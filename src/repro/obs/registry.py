"""The metrics registry: counters, gauges, and fixed-bucket histograms.

The live runtime (and, with the same series names, the simulator) needs
the observability any serving stack has: the paper's headline deliverable
is *measuring* probabilistic failure — the Algorithm 4/5 alert rate
against the predicted ``P_err(R, K, X)`` — and a rate nobody can export
might as well not exist.  This module is the dependency-free core of
``repro.obs``:

* :class:`Counter` — a monotonically increasing value (``_total`` series).
* :class:`Gauge` — a point-in-time value that can go both ways.
* :class:`Histogram` — fixed bucket bounds chosen at creation, constant
  memory per series, mergeable across processes (bounds must match).
* :class:`MetricsRegistry` — the instrument store.  Hot paths either
  push (``counter.inc()``, ``histogram.observe()``) or stay untouched:
  a **collector callback** registered with the registry is invoked at
  snapshot time and syncs pre-existing counter structs (e.g. the
  session's :class:`~repro.net.session.TransportStats`) into registry
  instruments via ``Counter.set`` — zero per-datagram overhead, and the
  registry values are *by construction* identical to the structs the
  rest of the code base already trusts (the differential suite checks
  exactly this).

Snapshots are plain JSON-ready dicts (see :meth:`MetricsRegistry.snapshot`)
so the JSONL exporter, the ``repro stats`` renderer, and cross-process
aggregation (:func:`merge_snapshots`) all speak one format.

Naming conventions (DESIGN.md §8): every series is prefixed ``repro_``,
counters end in ``_total``, time histograms end in their unit
(``_seconds`` live, ``_ms`` simulated), and identity rides on registry
level constant labels (``node="a"`` / ``mode="sim"``), not per-series
labels, which keeps cardinality flat.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "render_prometheus",
    "DEFAULT_TIME_BOUNDS_SECONDS",
    "DEFAULT_TIME_BOUNDS_MS",
]

# Latency-shaped defaults: sub-millisecond to seconds (live runtime)...
DEFAULT_TIME_BOUNDS_SECONDS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)
# ... and the same shape in simulated milliseconds.
DEFAULT_TIME_BOUNDS_MS: Tuple[float, ...] = (
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0,
)


class Counter:
    """A monotonically increasing value.

    ``set`` exists for pull-style collectors that sync an externally
    maintained tally (it still must never go backwards — the registry is
    the mirror, not the source of truth, for those series).
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ConfigurationError(f"counter increments must be >= 0, got {amount}")
        self.value += amount

    def set(self, value: float) -> None:
        """Sync an absolute value from an external tally (collectors)."""
        self.value = value


class Gauge:
    """A point-in-time value (queue depth, peer count, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the current value upwards."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust the current value downwards."""
        self.value -= amount


class Histogram:
    """Fixed-bound bucket histogram with exact count/sum.

    ``bounds`` are the finite upper bucket edges, strictly increasing;
    an implicit +Inf bucket catches the overflow, so ``counts`` has
    ``len(bounds) + 1`` cells.  Memory is constant per series no matter
    how many observations arrive, and two histograms with identical
    bounds merge by elementwise addition — which is what lets the sweep
    fan-out and multi-node exports aggregate.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        cleaned = tuple(float(b) for b in bounds)
        if not cleaned:
            raise ConfigurationError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(cleaned, cleaned[1:])):
            raise ConfigurationError(
                f"histogram bounds must be strictly increasing, got {cleaned}"
            )
        if any(math.isnan(b) or math.isinf(b) for b in cleaned):
            raise ConfigurationError("histogram bounds must be finite")
        self.bounds = cleaned
        self.counts = [0] * (len(cleaned) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation (buckets are ``value <= bound``)."""
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Exact mean of all observations (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution ``q``-quantile (linear within the bucket).

        The +Inf bucket has no upper edge, so observations landing there
        report the largest finite bound — a floor, clearly labelled as
        bucket-limited in the docs.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must lie in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index]
                fraction = (rank - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        return self.bounds[-1]

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram with identical bounds into this one."""
        if self.bounds != other.bounds:
            raise ConfigurationError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.sum += other.sum
        self.count += other.count

    def as_dict(self) -> dict:
        """JSON-ready form (the snapshot/JSONL shape)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Histogram":
        """Rebuild from :meth:`as_dict` output (exporter round-trip)."""
        histogram = cls(data["bounds"])
        counts = list(data["counts"])
        if len(counts) != len(histogram.counts):
            raise ConfigurationError(
                f"histogram dict has {len(counts)} buckets, "
                f"expected {len(histogram.counts)}"
            )
        histogram.counts = [int(c) for c in counts]
        histogram.sum = float(data["sum"])
        histogram.count = int(data["count"])
        return histogram


def _series_key(name: str, labels: Mapping[str, str]) -> str:
    """Canonical series key: ``name`` or ``name{k="v",...}`` (sorted)."""
    if not labels:
        return name
    rendered = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """The instrument store one node (or one simulation run) owns.

    Args:
        labels: constant labels attached to every exported series
            (identity lives here: ``node="a"``, ``mode="sim"``).
    """

    def __init__(self, labels: Optional[Mapping[str, str]] = None) -> None:
        self.labels: Dict[str, str] = dict(labels or {})
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # instrument creation (get-or-create, so call sites stay declarative)
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        """Get or create the counter for ``(name, labels)``."""
        key = _series_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            self._check_unused(key)
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        """Get or create the gauge for ``(name, labels)``."""
        key = _series_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            self._check_unused(key)
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_TIME_BOUNDS_SECONDS,
        **labels: str,
    ) -> Histogram:
        """Get or create the histogram for ``(name, labels)``.

        ``bounds`` only applies on creation; a later call with different
        bounds is a configuration error (bounds are part of the series'
        identity — silent rebinning would corrupt merged exports).
        """
        key = _series_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            self._check_unused(key)
            instrument = self._histograms[key] = Histogram(bounds)
        elif instrument.bounds != tuple(float(b) for b in bounds):
            raise ConfigurationError(
                f"histogram {key!r} already exists with bounds "
                f"{instrument.bounds}, requested {tuple(bounds)}"
            )
        return instrument

    def _check_unused(self, key: str) -> None:
        for family, kind in (
            (self._counters, "counter"),
            (self._gauges, "gauge"),
            (self._histograms, "histogram"),
        ):
            if key in family:
                raise ConfigurationError(
                    f"series {key!r} already registered as a {kind}"
                )

    def register_collector(self, collect: Callable[[], None]) -> None:
        """Register a pull-style sync callback, run before every snapshot.

        Collectors bridge externally maintained tallies (TransportStats,
        EndpointStats, DetectorStats...) into registry instruments without
        touching the hot paths that maintain them.
        """
        self._collectors.append(collect)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def collect(self) -> None:
        """Run every registered collector (sync external tallies in)."""
        for collector in self._collectors:
            collector()

    def snapshot(self) -> dict:
        """JSON-ready snapshot of every series (collectors run first)."""
        self.collect()
        return {
            "labels": dict(self.labels),
            "counters": {key: c.value for key, c in sorted(self._counters.items())},
            "gauges": {key: g.value for key, g in sorted(self._gauges.items())},
            "histograms": {
                key: h.as_dict() for key, h in sorted(self._histograms.items())
            },
        }

    def render_prometheus(self) -> str:
        """The snapshot in Prometheus text exposition format."""
        return render_prometheus(self.snapshot())


def merge_snapshots(snapshots: Iterable[dict]) -> dict:
    """Aggregate snapshots from several registries into one.

    Counters and gauges sum (gauges here are depth-like quantities where
    the fleet-wide total is the meaningful aggregate); histograms merge
    bucket-wise and must share bounds.  Constant labels survive only
    where every input agrees — disagreeing labels (e.g. ``node``) are
    dropped, which is exactly the identity erasure aggregation implies.
    """
    merged_counters: Dict[str, float] = {}
    merged_gauges: Dict[str, float] = {}
    merged_histograms: Dict[str, Histogram] = {}
    merged_labels: Optional[Dict[str, str]] = None
    for snapshot in snapshots:
        labels = dict(snapshot.get("labels", {}))
        if merged_labels is None:
            merged_labels = labels
        else:
            merged_labels = {
                k: v for k, v in merged_labels.items() if labels.get(k) == v
            }
        for key, value in snapshot.get("counters", {}).items():
            merged_counters[key] = merged_counters.get(key, 0) + value
        for key, value in snapshot.get("gauges", {}).items():
            merged_gauges[key] = merged_gauges.get(key, 0.0) + value
        for key, data in snapshot.get("histograms", {}).items():
            incoming = Histogram.from_dict(data)
            existing = merged_histograms.get(key)
            if existing is None:
                merged_histograms[key] = incoming
            else:
                existing.merge(incoming)
    return {
        "labels": merged_labels or {},
        "counters": dict(sorted(merged_counters.items())),
        "gauges": dict(sorted(merged_gauges.items())),
        "histograms": {
            key: h.as_dict() for key, h in sorted(merged_histograms.items())
        },
    }


def _prom_series(key: str, constant_labels: Mapping[str, str]) -> str:
    """Fold registry-level constant labels into a series key."""
    if not constant_labels:
        return key
    rendered = ",".join(
        f'{k}="{constant_labels[k]}"' for k in sorted(constant_labels)
    )
    if key.endswith("}"):
        return f"{key[:-1]},{rendered}}}"
    return f"{key}{{{rendered}}}"


def render_prometheus(snapshot: Mapping) -> str:
    """Render a snapshot dict in Prometheus text exposition format."""
    labels = snapshot.get("labels", {})
    lines: List[str] = []
    for key, value in snapshot.get("counters", {}).items():
        lines.append(f"{_prom_series(key, labels)} {value}")
    for key, value in snapshot.get("gauges", {}).items():
        lines.append(f"{_prom_series(key, labels)} {value}")
    for key, data in snapshot.get("histograms", {}).items():
        name = key.split("{", 1)[0]
        suffix = key[len(name):]
        cumulative = 0
        for bound, count in zip(data["bounds"], data["counts"]):
            cumulative += count
            bucket = _prom_series(f"{name}_bucket{suffix}", labels)
            if bucket.endswith("}"):
                bucket = f'{bucket[:-1]},le="{bound}"}}'
            else:
                bucket = f'{bucket}{{le="{bound}"}}'
            lines.append(f"{bucket} {cumulative}")
        bucket = _prom_series(f"{name}_bucket{suffix}", labels)
        if bucket.endswith("}"):
            bucket = f'{bucket[:-1]},le="+Inf"}}'
        else:
            bucket = f'{bucket}{{le="+Inf"}}'
        lines.append(f"{bucket} {data['count']}")
        lines.append(f"{_prom_series(f'{name}_sum{suffix}', labels)} {data['sum']}")
        lines.append(f"{_prom_series(f'{name}_count{suffix}', labels)} {data['count']}")
    return "\n".join(lines) + "\n"
