"""A minimal Prometheus-text HTTP endpoint over ``asyncio.start_server``.

Enough HTTP to satisfy a Prometheus scraper or ``curl`` — ``GET
/metrics`` returns the registry rendered in text exposition format
(version 0.0.4); anything else is a 404.  Deliberately not a web
framework: no routing table, no keep-alive, one response per
connection, zero dependencies.

Bind with port 0 to get an ephemeral port (tests do); the bound port is
available as :attr:`MetricsHttpServer.port` after :meth:`start`.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from repro.obs.registry import MetricsRegistry

__all__ = ["MetricsHttpServer"]

_RESPONSE_TEMPLATE = (
    "HTTP/1.1 {status}\r\n"
    "Content-Type: {content_type}\r\n"
    "Content-Length: {length}\r\n"
    "Connection: close\r\n"
    "\r\n"
)


class MetricsHttpServer:
    """Serve one registry's metrics at ``GET /metrics``."""

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self.registry = registry
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        # Resolve port 0 to the ephemeral port the kernel picked.
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            parts = request_line.decode("latin-1", "replace").split()
            # Drain headers; nothing in them matters for a scrape.
            while True:
                header = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if header in (b"\r\n", b"\n", b""):
                    break
            if len(parts) >= 2 and parts[0] == "GET" and parts[1] == "/metrics":
                body = self.registry.render_prometheus().encode("utf-8")
                status = "200 OK"
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            else:
                body = b"not found\n"
                status = "404 Not Found"
                content_type = "text/plain; charset=utf-8"
            head = _RESPONSE_TEMPLATE.format(
                status=status, content_type=content_type, length=len(body)
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
