"""``repro.obs`` — the dependency-free observability layer.

One registry per node (or per simulation run), constant labels for
identity, pull collectors bridging the runtime's existing stats structs,
push histograms on the few paths that need distributions, a trace-event
ring for discrete incidents, a JSONL exporter for durable series, and a
minimal Prometheus-text HTTP endpoint for live scrapes.  See DESIGN.md
§8 for the metric-name inventory and conventions.
"""

from repro.obs.export import JsonlExporter, last_snapshot, read_snapshots
from repro.obs.http import MetricsHttpServer
from repro.obs.registry import (
    DEFAULT_TIME_BOUNDS_MS,
    DEFAULT_TIME_BOUNDS_SECONDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.trace import TraceRing

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "render_prometheus",
    "DEFAULT_TIME_BOUNDS_SECONDS",
    "DEFAULT_TIME_BOUNDS_MS",
    "TraceRing",
    "JsonlExporter",
    "read_snapshots",
    "last_snapshot",
    "MetricsHttpServer",
]
