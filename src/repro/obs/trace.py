"""A structured trace-event ring buffer.

Metrics aggregate; traces explain.  When the alert rate spikes or a peer
flaps, the *last few hundred discrete events* (who alerted about which
message, which quarantine fired, which delta reference missed) are what
turn a graph into a diagnosis.  :class:`TraceRing` is the dependency-free
vehicle: a fixed-capacity ring of plain dicts, overwritten oldest-first,
so memory is bounded no matter how long a node runs.

Event schema (DESIGN.md §8): every event is ``{"ts": <monotonic float>,
"kind": <str>, ...fields}``.  ``kind`` values the runtime emits today:
``alert``, ``quarantine``, ``resume``, ``delta_ref_miss``,
``journal_snapshot``, ``decode_error``.  Consumers must tolerate unknown
kinds and extra fields — the ring is a debugging surface, not an API.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.core.errors import ConfigurationError

__all__ = ["TraceRing"]


class TraceRing:
    """Fixed-capacity ring buffer of structured trace events."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"trace ring capacity must be positive, got {capacity}"
            )
        self.capacity = capacity
        self._events: Deque[dict] = deque(maxlen=capacity)
        self.emitted = 0  # lifetime count, including overwritten events

    def emit(self, kind: str, ts: float = 0.0, **fields) -> None:
        """Record one event; oldest events are overwritten at capacity."""
        event = {"ts": ts, "kind": kind}
        event.update(fields)
        self._events.append(event)
        self.emitted += 1

    def events(self, kind: Optional[str] = None) -> List[dict]:
        """The buffered events, oldest first, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event["kind"] == kind]

    def clear(self) -> None:
        """Drop all buffered events (the lifetime count survives)."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)
