"""A minimal, fast discrete-event simulation kernel.

The paper's evaluation (Section 5.4) uses a simple event-based simulator;
this module is our equivalent.  It is deliberately tiny: a binary-heap
agenda of ``(time, tiebreak, callback, argument)`` entries and a run loop.
Everything domain-specific (nodes, network, workload, churn) lives above
it in :mod:`repro.sim.runner`.

Determinism: ties in time are broken by insertion order (a monotonically
increasing sequence number), so a simulation with a fixed seed replays
identically event for event.  Time is a float in **milliseconds**
throughout the simulator, matching the paper's parameter conventions
(propagation time N(100, 20) ms, λ in ms).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.core.errors import SimulationError

__all__ = ["Simulator"]

_Event = Tuple[float, int, Callable[[Any], None], Any]


class Simulator:
    """Event loop with a heap agenda.

    Typical use::

        sim = Simulator()
        sim.schedule(10.0, handler, payload)
        sim.run()          # until the agenda empties
        print(sim.now)     # simulated milliseconds elapsed
    """

    def __init__(self) -> None:
        self._agenda: List[_Event] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled."""
        return len(self._agenda)

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[Any], None], argument: Any = None) -> None:
        """Schedule ``callback(argument)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self.schedule_at(self._now + delay, callback, argument)

    def schedule_at(
        self, time: float, callback: Callable[[Any], None], argument: Any = None
    ) -> None:
        """Schedule ``callback(argument)`` at absolute time ``time`` ms."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        self._sequence += 1
        heapq.heappush(self._agenda, (time, self._sequence, callback, argument))

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Execute events until the agenda empties, ``until`` is passed, or
        ``max_events`` have run in this call.  Returns the number of events
        executed by this call.

        Events scheduled exactly at ``until`` still execute; the first
        event strictly beyond it stays queued and time stops at ``until``.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from an event handler")
        self._running = True
        executed = 0
        agenda = self._agenda
        try:
            while agenda:
                if max_events is not None and executed >= max_events:
                    break
                time, _, callback, argument = agenda[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(agenda)
                self._now = time
                callback(argument)
                executed += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        self._processed += executed
        return executed

    def clear(self) -> None:
        """Drop every scheduled event (the clock keeps its value)."""
        self._agenda.clear()
