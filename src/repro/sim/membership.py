"""Membership and churn models.

The headline motivation of the paper is very large systems *with changing
membership*: vector clocks break under churn (they need the exact process
count), whereas the (R, K) scheme lets a node join by drawing a fresh
``set_id`` locally, with no global coordination.

:class:`MembershipView` tracks who is currently in the group; churn models
decide *when* joins and leaves happen:

* :class:`NoChurn` — static membership (the paper's measured runs);
* :class:`PoissonChurn` — joins and leaves as independent Poisson
  processes, bounded between a minimum and maximum population;
* :class:`ScriptedChurn` — explicit (time, join/leave) events, for tests
  and for reproducing targeted scenarios (mass leave, flash crowd).

The runner consumes churn as a sequence of timed events and performs the
actual node construction/teardown.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ConfigurationError, MembershipError
from repro.sim.rng import RandomSource

__all__ = [
    "ChurnAction",
    "ChurnEvent",
    "MembershipView",
    "ChurnModel",
    "NoChurn",
    "PoissonChurn",
    "ScriptedChurn",
]

ProcessId = Hashable


class ChurnAction(enum.Enum):
    JOIN = "join"
    LEAVE = "leave"


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change: at ``time`` ms, apply ``action``.

    For scripted leaves, ``node_id`` may name the departing node; when
    ``None`` the runner picks a random current member.  Joins always get a
    fresh runner-generated identity.
    """

    time: float
    action: ChurnAction
    node_id: Optional[ProcessId] = None


class MembershipView:
    """The set of currently live nodes, with O(1) random sampling support.

    Maintains both a set (membership tests) and a list (uniform sampling)
    using the swap-remove idiom.
    """

    def __init__(self, initial: Sequence[ProcessId] = ()) -> None:
        self._members: List[ProcessId] = []
        self._index: dict = {}
        self.joined_total = 0
        self.left_total = 0
        for node_id in initial:
            self.add(node_id)

    def add(self, node_id: ProcessId) -> None:
        """Register a joining member."""
        if node_id in self._index:
            raise MembershipError(f"{node_id!r} is already a member")
        self._index[node_id] = len(self._members)
        self._members.append(node_id)
        self.joined_total += 1

    def remove(self, node_id: ProcessId) -> None:
        """Remove a departing member (swap-remove, O(1))."""
        position = self._index.pop(node_id, None)
        if position is None:
            raise MembershipError(f"{node_id!r} is not a member")
        last = self._members.pop()
        if last != node_id:
            self._members[position] = last
            self._index[last] = position
        self.left_total += 1

    def sample(self, rng: RandomSource) -> ProcessId:
        """Uniformly pick one current member."""
        if not self._members:
            raise MembershipError("membership is empty")
        return self._members[rng.integer(0, len(self._members))]

    def members(self) -> Tuple[ProcessId, ...]:
        """Snapshot of the current membership."""
        return tuple(self._members)

    def __contains__(self, node_id: ProcessId) -> bool:
        return node_id in self._index

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(tuple(self._members))


class ChurnModel(ABC):
    """Produces the timed membership changes of one run."""

    @abstractmethod
    def events(self, rng: RandomSource, horizon_ms: float) -> List[ChurnEvent]:
        """All churn events in ``[0, horizon_ms)``, sorted by time."""


class NoChurn(ChurnModel):
    """Static membership."""

    def events(self, rng: RandomSource, horizon_ms: float) -> List[ChurnEvent]:
        return []


class PoissonChurn(ChurnModel):
    """Joins and leaves as Poisson processes.

    Args:
        join_interval_ms: mean time between joins (``None`` disables joins).
        leave_interval_ms: mean time between leaves (``None`` disables).
        min_population / max_population: leaves are suppressed at the
            floor, joins at the ceiling (the runner enforces this again at
            execution time, since scripted populations drift).
    """

    def __init__(
        self,
        join_interval_ms: Optional[float] = None,
        leave_interval_ms: Optional[float] = None,
        min_population: int = 2,
        max_population: Optional[int] = None,
    ) -> None:
        for name, value in (("join", join_interval_ms), ("leave", leave_interval_ms)):
            if value is not None and value <= 0:
                raise ConfigurationError(f"{name}_interval_ms must be > 0, got {value}")
        if min_population < 2:
            raise ConfigurationError(f"min_population must be >= 2, got {min_population}")
        if max_population is not None and max_population < min_population:
            raise ConfigurationError("max_population must be >= min_population")
        self.join_interval_ms = join_interval_ms
        self.leave_interval_ms = leave_interval_ms
        self.min_population = min_population
        self.max_population = max_population

    def events(self, rng: RandomSource, horizon_ms: float) -> List[ChurnEvent]:
        events: List[ChurnEvent] = []
        for interval, action in (
            (self.join_interval_ms, ChurnAction.JOIN),
            (self.leave_interval_ms, ChurnAction.LEAVE),
        ):
            if interval is None:
                continue
            time = rng.exponential(interval)
            while time < horizon_ms:
                events.append(ChurnEvent(time=time, action=action))
                time += rng.exponential(interval)
        events.sort(key=lambda event: event.time)
        return events


class ScriptedChurn(ChurnModel):
    """Replays an explicit list of churn events."""

    def __init__(self, events: Sequence[ChurnEvent]) -> None:
        ordered = sorted(events, key=lambda event: event.time)
        if any(event.time < 0 for event in ordered):
            raise ConfigurationError("churn events cannot be scheduled before t=0")
        self._events = list(ordered)

    def events(self, rng: RandomSource, horizon_ms: float) -> List[ChurnEvent]:
        return [event for event in self._events if event.time < horizon_ms]
