"""Fault injection: network partitions and crash-stop failures.

The paper assumes a reliable broadcast substrate; real networks fail in
structured ways.  This module injects the two classic faults into any
dissemination strategy, so the experiments can ask what the probabilistic
ordering layer does *around* them:

* :class:`PartitionedDissemination` wraps a strategy and drops every copy
  that would cross a partition boundary during scheduled split windows.
  While split, each side keeps ordering its own traffic; at heal time the
  backlog flows (or, with anti-entropy, is pulled) across — the burst
  that stresses the covering probability.
* :class:`CrashSchedule` produces scripted *crash-stop* events: unlike a
  graceful leave, a crashed node's in-flight messages are still counted
  (its sends remain causal dependencies for everyone else), which is
  exactly why the oracle keeps their records alive.

Both compose with every other layer (gossip, churn, recovery, adaptive
K) because they act strictly below the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Sequence

from repro.core.errors import ConfigurationError
from repro.core.protocol import Message
from repro.sim.dissemination import Dissemination, DisseminationContext
from repro.sim.membership import ChurnAction, ChurnEvent, ChurnModel
from repro.util.rng import RandomSource

__all__ = ["PartitionWindow", "PartitionedDissemination", "CrashSchedule"]

ProcessId = Hashable


@dataclass(frozen=True)
class PartitionWindow:
    """One split: from ``start_ms`` to ``end_ms`` the system is cut into
    groups; traffic crossing group boundaries is dropped.

    ``group_of`` maps a node id to its group index; nodes mapping to
    ``None`` are unaffected (they hear everyone).
    """

    start_ms: float
    end_ms: float
    group_of: Callable[[ProcessId], Optional[int]]

    def __post_init__(self) -> None:
        if self.start_ms < 0 or self.end_ms <= self.start_ms:
            raise ConfigurationError(
                f"invalid partition window [{self.start_ms}, {self.end_ms})"
            )

    def active_at(self, now: float) -> bool:
        return self.start_ms <= now < self.end_ms

    def separates(self, a: ProcessId, b: ProcessId) -> bool:
        group_a = self.group_of(a)
        group_b = self.group_of(b)
        return group_a is not None and group_b is not None and group_a != group_b

    @staticmethod
    def split_even_odd(start_ms: float, end_ms: float) -> "PartitionWindow":
        """Convenience: bipartition integer node ids by parity."""
        return PartitionWindow(
            start_ms=start_ms,
            end_ms=end_ms,
            group_of=lambda node: int(node) % 2 if isinstance(node, int) else None,
        )


class _FilteringContext(DisseminationContext):
    """Context proxy that drops scheduled copies crossing a partition."""

    def __init__(
        self,
        inner: DisseminationContext,
        sender: ProcessId,
        windows: Sequence[PartitionWindow],
        now_fn: Callable[[], float],
        on_drop: Callable[[], None],
    ) -> None:
        self._inner = inner
        self._sender = sender
        self._windows = windows
        self._now_fn = now_fn
        self._on_drop = on_drop

    def members(self):
        return self._inner.members()

    @property
    def rng(self) -> RandomSource:
        return self._inner.rng

    def schedule_receive(self, node_id, message, delay_ms: float) -> None:
        now = self._now_fn()
        for window in self._windows:
            if window.active_at(now) and window.separates(self._sender, node_id):
                self._on_drop()
                return
        self._inner.schedule_receive(node_id, message, delay_ms)


class PartitionedDissemination(Dissemination):
    """Wrap any dissemination strategy with partition windows.

    The wrapper filters at *transmission* time: a copy sent while a
    window is active and crossing groups is dropped (the real network
    would not carry it).  Relay hops are filtered against the relaying
    node, so gossip routed around a partition behaves correctly: only
    links that actually cross the cut are severed.

    Args:
        inner: the real strategy (direct broadcast, gossip, ...).
        windows: partition windows (may overlap).
        now_fn: returns the current simulation time; the runner's
            simulator clock is injected by :func:`attach_clock` (the
            runner does this automatically when it sees the attribute).
    """

    def __init__(
        self, inner: Dissemination, windows: Sequence[PartitionWindow]
    ) -> None:
        super().__init__(inner.delay_model)
        self._inner = inner
        self._windows = list(windows)
        self._now_fn: Callable[[], float] = lambda: 0.0
        self.dropped_by_partition = 0

    def attach_clock(self, now_fn: Callable[[], float]) -> None:
        """Inject the simulation clock (called by the runner)."""
        self._now_fn = now_fn

    def _count_drop(self) -> None:
        self.dropped_by_partition += 1

    def _filtering(self, context: DisseminationContext, origin: ProcessId):
        return _FilteringContext(
            context, origin, self._windows, self._now_fn, self._count_drop
        )

    def disseminate(
        self, context: DisseminationContext, message: Message, sender_id: ProcessId
    ) -> int:
        return self._inner.disseminate(
            self._filtering(context, sender_id), message, sender_id
        )

    def on_first_reception(
        self, context: DisseminationContext, message: Message, node_id: ProcessId
    ) -> None:
        self._inner.on_first_reception(
            self._filtering(context, node_id), message, node_id
        )

    def forget(self, node_id: ProcessId) -> None:
        forget = getattr(self._inner, "forget", None)
        if forget is not None:
            forget(node_id)


class CrashSchedule(ChurnModel):
    """Scripted crash-stop failures, expressed as leave events.

    A crash is modelled as an abrupt leave at a scheduled time: the node
    stops sending and receiving immediately.  Unlike
    :class:`~repro.sim.membership.PoissonChurn`, times are explicit, so a
    test can crash node X right between two causally related sends and
    check the system's behaviour around the gap.
    """

    def __init__(self, crash_times_ms: Sequence[float]) -> None:
        if any(t < 0 for t in crash_times_ms):
            raise ConfigurationError("crash times must be >= 0")
        self._times = sorted(float(t) for t in crash_times_ms)

    def events(self, rng: RandomSource, horizon_ms: float) -> List[ChurnEvent]:
        return [
            ChurnEvent(time=t, action=ChurnAction.LEAVE)
            for t in self._times
            if t < horizon_ms
        ]
