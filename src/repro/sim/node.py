"""A simulated participant: protocol endpoint plus run-time bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

import numpy as np

from repro.core.keyspace import KeyAssignment
from repro.core.protocol import CausalBroadcastEndpoint

__all__ = ["SimNode"]

ProcessId = Hashable


@dataclass
class SimNode:
    """One node of the simulated system.

    Attributes:
        node_id: its identity (stable across the run).
        slot: dense index assigned by the oracle (and, for the exact
            vector-clock baseline, the node's own clock entry).
        endpoint: the causal-broadcast protocol machine under test.
        assignment: the node's key set (``f(p_i)``), if the configured
            clock uses assigned keys.
        joined_at / left_at: membership interval in simulation time (ms);
            ``left_at`` is None while the node is alive.
    """

    node_id: ProcessId
    slot: int
    endpoint: CausalBroadcastEndpoint
    assignment: Optional[KeyAssignment] = None
    joined_at: float = 0.0
    left_at: Optional[float] = None
    bootstrap_sends: Optional[np.ndarray] = None
    """For late joiners: per-slot send counts at join time — the history
    the state transfer already covered (never to be replayed)."""

    @property
    def alive(self) -> bool:
        """Whether the node is still a member."""
        return self.left_at is None

    def leave(self, now: float) -> None:
        """Mark the node as departed at time ``now``."""
        self.left_at = now
