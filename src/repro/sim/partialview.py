"""Partial-view gossip: dissemination without global membership knowledge.

The paper's probabilistic-broadcast citation (Eugster et al.,
*Lightweight Probabilistic Broadcast*) makes a point our plain
:class:`~repro.sim.dissemination.PushGossip` glosses over: in a truly
large system **nobody knows the full membership**.  Each process keeps a
small *partial view* — a random sample of peers — and gossips both
messages and membership information through it.

:class:`PartialViewGossip` implements that regime:

* every node holds a bounded view (``view_size`` entries) seeded with a
  random sample of the initial membership;
* a broadcast is pushed to ``fanout`` targets drawn from the *sender's
  view only*;
* each message piggybacks a small sample of the relayer's view
  (``piggyback_size`` ids); receivers merge it into their own view and
  evict random entries beyond the bound — this is how joins spread and
  how views stay fresh under churn;
* relays happen on first reception (infect-and-die), exactly like plain
  gossip.

This makes the dissemination layer match the paper's setting end to end:
the causal layer already needs no membership knowledge (timestamps carry
the sender's keys), and with partial views the transport doesn't either.

Implementation note: piggybacked ids ride in a side-table keyed by the
``(message, relayer)`` pair rather than inside the payload, so the same
:class:`~repro.core.protocol.Message` object (and its oracle record) is
shared by all copies — what a real system would encode in the envelope.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from repro.core.errors import ConfigurationError
from repro.core.protocol import Message
from repro.sim.dissemination import Dissemination, DisseminationContext
from repro.sim.network import DelayModel
from repro.util.rng import RandomSource

__all__ = ["PartialViewGossip"]

ProcessId = Hashable


class PartialViewGossip(Dissemination):
    """Infect-and-die gossip over bounded partial views (lpbcast-style).

    Membership churn must be *slow* relative to the message rate: merging
    a membership sample on every reception lets popular ids take over all
    views within seconds (a rich-get-richer collapse that measurably
    destroys coverage — see ``tests/test_partialview.py``), so merges are
    throttled by ``merge_probability``, mirroring lpbcast's amortised
    view maintenance.

    Args:
        delay_model: per-hop network delays.
        fanout: targets per push, drawn from the node's current view.
        view_size: bound on each node's membership sample.
        piggyback_size: how many view entries each push carries along.
        merge_probability: chance that a receiver folds the piggybacked
            sample into its view (throttles view churn).
    """

    def __init__(
        self,
        delay_model: DelayModel,
        fanout: int = 4,
        view_size: int = 12,
        piggyback_size: int = 3,
        merge_probability: float = 0.05,
    ) -> None:
        super().__init__(delay_model)
        if fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
        if view_size < fanout:
            raise ConfigurationError(
                f"view_size ({view_size}) must be >= fanout ({fanout})"
            )
        if piggyback_size < 0:
            raise ConfigurationError(f"piggyback_size must be >= 0, got {piggyback_size}")
        if not 0.0 <= merge_probability <= 1.0:
            raise ConfigurationError(
                f"merge_probability must lie in [0, 1], got {merge_probability}"
            )
        self._fanout = fanout
        self._view_size = view_size
        self._piggyback_size = piggyback_size
        self._merge_probability = merge_probability
        self._views: Dict[ProcessId, List[ProcessId]] = {}
        # Envelope side-table: (message_id, receiver) -> piggybacked ids.
        self._envelopes: Dict[Tuple, Tuple[ProcessId, ...]] = {}
        self.view_updates = 0

    # ------------------------------------------------------------------
    # view maintenance
    # ------------------------------------------------------------------

    def view_of(self, node_id: ProcessId) -> Tuple[ProcessId, ...]:
        """The node's current partial view (empty if never initialised)."""
        return tuple(self._views.get(node_id, ()))

    def _ensure_view(self, context: DisseminationContext, node_id: ProcessId) -> List[ProcessId]:
        view = self._views.get(node_id)
        if view is None:
            members = [m for m in context.members() if m != node_id]
            size = min(self._view_size, len(members))
            view = context.rng.sample(members, size) if size else []
            self._views[node_id] = view
        return view

    def _merge_into_view(
        self, rng: RandomSource, node_id: ProcessId, newcomers: Tuple[ProcessId, ...]
    ) -> None:
        view = self._views.setdefault(node_id, [])
        present: Set[ProcessId] = set(view)
        for candidate in newcomers:
            if candidate == node_id or candidate in present:
                continue
            if len(view) < self._view_size:
                view.append(candidate)
            else:
                view[rng.integer(0, len(view))] = candidate
            present.add(candidate)
            self.view_updates += 1

    def forget(self, node_id: ProcessId) -> None:
        """Drop a departed node's own view (its id ages out of other
        views through piggyback replacement)."""
        self._views.pop(node_id, None)

    # ------------------------------------------------------------------
    # dissemination
    # ------------------------------------------------------------------

    def disseminate(
        self, context: DisseminationContext, message: Message, sender_id: ProcessId
    ) -> int:
        self._push(context, message, sender_id)
        return max(0, len(context.members()) - 1)

    def on_first_reception(
        self, context: DisseminationContext, message: Message, node_id: ProcessId
    ) -> None:
        # Merge the piggybacked membership sample (throttled), then relay.
        envelope = self._envelopes.pop((message.message_id, node_id), ())
        if envelope and context.rng.random() < self._merge_probability:
            self._merge_into_view(context.rng, node_id, envelope)
        self._push(context, message, node_id)

    def _push(
        self, context: DisseminationContext, message: Message, from_node: ProcessId
    ) -> None:
        rng = context.rng
        view = self._ensure_view(context, from_node)
        live = [peer for peer in view if peer != from_node]
        if not live:
            return
        count = min(self._fanout, len(live))
        piggyback: Tuple[ProcessId, ...] = ()
        if self._piggyback_size and view:
            sample_size = min(self._piggyback_size, len(view))
            piggyback = tuple(rng.sample(view, sample_size)) + (from_node,)
        for target in rng.sample(live, count):
            if piggyback:
                self._envelopes[(message.message_id, target)] = piggyback
            base = self._delay_model.sample_base(rng)
            context.schedule_receive(
                target, message, self._delay_model.sample_arrival(rng, base)
            )
