"""Ground-truth causality oracle (Section 5.4.1 of the paper).

Measuring the error rate of the probabilistic mechanism requires knowing,
for every delivery it performs, whether the message really was causally
ready.  The paper does this with full vector clocks maintained *inside the
simulator* (never visible to the protocol under test), and so do we.

The subtlety the paper calls out: a perfect vector clock cannot classify
every delivery once a violation has happened.  When the mechanism
wrongly delivers ``m``, the oracle max-merges ``m``'s true vector into the
node's true clock so that the node's state stays consistent — but from
then on, the causal predecessors of ``m`` that were skipped appear
*already known*.  When such a "missing" message finally arrives and the
mechanism delivers it, the oracle cannot tell whether causal order was
respected for it.  The paper therefore reports two bounds:

* ``ε_min`` counts only **proven** violations (assumes every ambiguous
  late delivery was causally ordered);
* ``ε_max`` additionally counts every ambiguous delivery as a violation.

:class:`CausalityOracle` implements exactly this classification and keeps
per-node and global tallies.  True vectors are dense NumPy arrays over
node *slots*; slots are assigned at registration so churn (nodes joining
later) is supported up to a fixed capacity.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.core.errors import ConfigurationError, SimulationError, UnknownProcessError

__all__ = ["DeliveryVerdict", "OracleCounters", "ClassifiedDelivery", "CausalityOracle"]

ProcessId = Hashable
MessageId = Tuple[ProcessId, int]


class DeliveryVerdict(enum.Enum):
    """Classification of one delivery performed by the mechanism under test."""

    CORRECT = "correct"
    """The message was causally ready: no violation."""

    VIOLATION = "violation"
    """Proven causal-order violation: some predecessor was missing."""

    AMBIGUOUS = "ambiguous"
    """A message whose content an earlier merge marked as already known;
    the vector-clock oracle cannot decide (counted in ε_max only)."""


@dataclass
class OracleCounters:
    """Delivery tallies; ``deliveries = correct + violations + ambiguous``."""

    deliveries: int = 0
    correct: int = 0
    violations: int = 0
    ambiguous: int = 0

    @property
    def eps_min(self) -> float:
        """Lower bound on the error rate (proven violations only)."""
        return self.violations / self.deliveries if self.deliveries else 0.0

    @property
    def eps_max(self) -> float:
        """Upper bound on the error rate (ambiguous counted as violations)."""
        if not self.deliveries:
            return 0.0
        return (self.violations + self.ambiguous) / self.deliveries

    def add(self, other: "OracleCounters") -> None:
        """Accumulate another tally into this one."""
        self.deliveries += other.deliveries
        self.correct += other.correct
        self.violations += other.violations
        self.ambiguous += other.ambiguous


@dataclass(frozen=True)
class ClassifiedDelivery:
    """The oracle's answer for one delivery."""

    verdict: DeliveryVerdict
    latency_ms: float
    """Time between the send event and this delivery."""


@dataclass
class _TrueRecord:
    vector: np.ndarray
    sender_slot: int
    send_time: float
    remaining: int


class CausalityOracle:
    """Maintains ground-truth vector clocks beside the system under test.

    Args:
        capacity: maximum number of nodes that will ever register (initial
            membership plus all future joins).  True vectors are dense
            arrays of this length.
    """

    def __init__(self, capacity: int, track_receptions: bool = False) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._slots: Dict[ProcessId, int] = {}
        self._true_clock: Dict[ProcessId, np.ndarray] = {}
        self._records: Dict[MessageId, _TrueRecord] = {}
        self.totals = OracleCounters()
        self.per_node: Dict[ProcessId, OracleCounters] = {}
        self._track_receptions = track_receptions
        self._reception_clock: Dict[ProcessId, np.ndarray] = {}
        self.receptions_total = 0
        self.receptions_out_of_order = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def register_node(
        self, node_id: ProcessId, initial_knowledge: Optional[np.ndarray] = None
    ) -> int:
        """Assign a slot to a (possibly late-joining) node.

        ``initial_knowledge`` seeds the node's ground-truth clock; a node
        joining with a state transfer passes the global send-count vector
        so the oracle knows it (transitively) depends on all prior
        messages.
        """
        if node_id in self._slots:
            raise SimulationError(f"node {node_id!r} already registered with the oracle")
        if len(self._slots) >= self._capacity:
            raise SimulationError(
                f"oracle capacity {self._capacity} exhausted; raise `capacity`"
            )
        slot = len(self._slots)
        self._slots[node_id] = slot
        clock = np.zeros(self._capacity, dtype=np.int64)
        if initial_knowledge is not None:
            if initial_knowledge.shape != clock.shape:
                raise ConfigurationError(
                    f"initial knowledge has shape {initial_knowledge.shape}, "
                    f"expected {clock.shape}"
                )
            clock[:] = initial_knowledge
        self._true_clock[node_id] = clock
        if self._track_receptions:
            self._reception_clock[node_id] = clock.copy()
        self.per_node[node_id] = OracleCounters()
        return slot

    def slot_of(self, node_id: ProcessId) -> int:
        """Dense slot index assigned to ``node_id`` at registration."""
        try:
            return self._slots[node_id]
        except KeyError:
            raise UnknownProcessError(node_id) from None

    # ------------------------------------------------------------------
    # event hooks
    # ------------------------------------------------------------------

    def on_send(
        self, node_id: ProcessId, message_id: MessageId, now: float, fanout: int
    ) -> None:
        """Record a broadcast: the sender's true clock ticks its own slot
        and the message's true vector is the resulting snapshot.

        ``fanout`` is the number of remote deliveries expected; the true
        vector is freed once that many deliveries were classified.
        """
        if message_id in self._records:
            raise SimulationError(f"message {message_id!r} sent twice")
        slot = self.slot_of(node_id)
        clock = self._true_clock[node_id]
        clock[slot] += 1
        if self._track_receptions:
            # The sender implicitly "receives" its own message.
            self._reception_clock[node_id][slot] += 1
        self._records[message_id] = _TrueRecord(
            vector=clock.copy(), sender_slot=slot, send_time=now, remaining=fanout
        )

    def classify_delivery(
        self, node_id: ProcessId, message_id: MessageId, now: float
    ) -> ClassifiedDelivery:
        """Classify one delivery by the mechanism under test and update the
        node's true clock exactly as Section 5.4.1 prescribes."""
        try:
            record = self._records[message_id]
        except KeyError:
            raise SimulationError(
                f"delivery of unknown message {message_id!r} (never sent, or freed)"
            ) from None
        clock = self._true_clock[self._resolve(node_id)]
        truth = record.vector
        sender = record.sender_slot

        if clock[sender] >= truth[sender]:
            # An earlier merge (caused by a wrong delivery of some causal
            # successor) already marked this message as known: the perfect
            # mechanism would have dropped it, and its causal status is
            # undecidable from vector clocks alone.
            verdict = DeliveryVerdict.AMBIGUOUS
            np.maximum(clock, truth, out=clock)
        else:
            deficits = int(np.count_nonzero(clock < truth))
            fifo_ok = clock[sender] == truth[sender] - 1
            if fifo_ok and deficits == 1:
                verdict = DeliveryVerdict.CORRECT
                clock[sender] += 1
            else:
                verdict = DeliveryVerdict.VIOLATION
                np.maximum(clock, truth, out=clock)

        self._tally(node_id, verdict)
        record.remaining -= 1
        if record.remaining <= 0:
            del self._records[message_id]
        return ClassifiedDelivery(verdict=verdict, latency_ms=now - record.send_time)

    def observe_reception(self, node_id: ProcessId, message_id: MessageId) -> bool:
        """Record the *arrival* (``rec(m)``) of a message and report whether
        the arrival itself respected causal order.

        This measures the system property the paper calls ``P_nc``: the
        probability that a message is received after a message it causally
        precedes.  It is independent of the ordering mechanism under test
        (which acts between reception and delivery).  Requires the oracle
        to have been built with ``track_receptions=True``.

        Returns True when the reception was causally ordered.
        """
        if not self._track_receptions:
            raise SimulationError("oracle was not built with track_receptions=True")
        record = self._records.get(message_id)
        if record is None:
            raise SimulationError(
                f"reception of unknown message {message_id!r} (never sent, or freed)"
            )
        clock = self._reception_clock[self._resolve(node_id)]
        truth = record.vector
        sender = record.sender_slot
        deficits = int(np.count_nonzero(clock < truth))
        ordered = deficits == 1 and clock[sender] == truth[sender] - 1
        np.maximum(clock, truth, out=clock)
        self.receptions_total += 1
        if not ordered:
            self.receptions_out_of_order += 1
        return ordered

    @property
    def p_nc_measured(self) -> float:
        """Measured fraction of out-of-causal-order receptions (P_nc)."""
        if not self.receptions_total:
            return 0.0
        return self.receptions_out_of_order / self.receptions_total

    def send_time_of(self, message_id: MessageId) -> Optional[float]:
        """Send time of a message whose record is still live, else None
        (a freed record means its delivery budget is already settled)."""
        record = self._records.get(message_id)
        return None if record is None else record.send_time

    def adjust_fanout(self, message_id: MessageId, delta: int) -> None:
        """Adjust a message's expected delivery count (e.g. a receiver left
        before the message arrived)."""
        record = self._records.get(message_id)
        if record is None:
            return
        record.remaining += delta
        if record.remaining <= 0:
            del self._records[message_id]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    @property
    def outstanding_messages(self) -> int:
        """Messages with deliveries still expected (0 after a full drain)."""
        return len(self._records)

    def true_clock_of(self, node_id: ProcessId) -> np.ndarray:
        """Copy of a node's ground-truth vector clock."""
        return self._true_clock[self._resolve(node_id)].copy()

    def _resolve(self, node_id: ProcessId) -> ProcessId:
        if node_id not in self._true_clock:
            raise UnknownProcessError(node_id)
        return node_id

    def _tally(self, node_id: ProcessId, verdict: DeliveryVerdict) -> None:
        for counters in (self.totals, self.per_node[node_id]):
            counters.deliveries += 1
            if verdict is DeliveryVerdict.CORRECT:
                counters.correct += 1
            elif verdict is DeliveryVerdict.VIOLATION:
                counters.violations += 1
            else:
                counters.ambiguous += 1
