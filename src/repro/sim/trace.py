"""Structured event tracing for simulations.

Debugging a distributed ordering protocol needs the event timeline: who
sent what when, where it was queued, when it finally delivered, which
deliveries the oracle flagged.  :class:`TraceRecorder` collects typed
:class:`TraceEvent` records with O(1) appends, bounded memory (ring
buffer), and query helpers; :class:`TracingApplication` plugs it into the
runner as a :class:`~repro.sim.runner.NodeApplication`, so any experiment
can be traced without touching the runner.

Traces are data, not text: render with :meth:`TraceRecorder.format` when
a human needs to read them, filter with :meth:`TraceRecorder.select` when
a test needs to assert on them.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.errors import ConfigurationError

__all__ = ["TraceKind", "TraceEvent", "TraceRecorder", "TracingApplication"]

# Sentinel for "any node" in queries (None is a legal node id).
_ANY_NODE = object()


class TraceKind(enum.Enum):
    SEND = "send"
    DELIVER = "deliver"
    ALERT = "alert"
    VIOLATION = "violation"
    AMBIGUOUS = "ambiguous"
    JOIN = "join"
    LEAVE = "leave"
    CUSTOM = "custom"


@dataclass(frozen=True)
class TraceEvent:
    """One timeline entry."""

    time: float
    kind: TraceKind
    node: Any
    message_id: Optional[Tuple] = None
    detail: Optional[str] = None

    def format(self) -> str:
        """One human-readable trace line."""
        parts = [f"{self.time:12.3f}ms", self.kind.value.upper().ljust(9), f"node={self.node}"]
        if self.message_id is not None:
            parts.append(f"msg={self.message_id}")
        if self.detail:
            parts.append(self.detail)
        return "  ".join(str(part) for part in parts)


class TraceRecorder:
    """Bounded in-memory event log with query helpers."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self._capacity = capacity

    def record(
        self,
        time: float,
        kind: TraceKind,
        node: Any,
        message_id: Optional[Tuple] = None,
        detail: Optional[str] = None,
    ) -> None:
        if len(self._events) == self._capacity:
            self.dropped += 1
        self._events.append(
            TraceEvent(time=time, kind=kind, node=node, message_id=message_id, detail=detail)
        )

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[TraceEvent]:
        """All retained events, oldest first."""
        return list(self._events)

    def select(
        self,
        kind: Optional[TraceKind] = None,
        node: Any = _ANY_NODE,
        message_id: Optional[Tuple] = None,
        since: Optional[float] = None,
        predicate: Optional[Callable[[TraceEvent], bool]] = None,
    ) -> List[TraceEvent]:
        """Filter events; every criterion is optional and conjunctive.

        ``node`` defaults to a sentinel meaning "any node" (``None`` is a
        legal node id, so it cannot serve as the default).
        """
        selected = []
        for event in self._events:
            if kind is not None and event.kind is not kind:
                continue
            if node is not _ANY_NODE and event.node != node:
                continue
            if message_id is not None and event.message_id != message_id:
                continue
            if since is not None and event.time < since:
                continue
            if predicate is not None and not predicate(event):
                continue
            selected.append(event)
        return selected

    def message_timeline(self, message_id: Tuple) -> List[TraceEvent]:
        """Everything that happened to one message, in order."""
        return self.select(message_id=message_id)

    def counts_by_kind(self) -> Dict[TraceKind, int]:
        """Histogram of retained events by kind."""
        counts: Dict[TraceKind, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def format(self, limit: Optional[int] = None) -> str:
        """Human-readable rendering of (the tail of) the trace."""
        events = self.events()
        if limit is not None:
            events = events[-limit:]
        lines = [event.format() for event in events]
        if self.dropped:
            lines.insert(0, f"... {self.dropped} earlier events dropped ...")
        return "\n".join(lines)


class TracingApplication:
    """A :class:`~repro.sim.runner.NodeApplication` factory that traces.

    Usage::

        recorder = TraceRecorder()
        config = SimulationConfig(..., application_factory=TracingApplication(recorder))
        run_simulation(config)
        print(recorder.format(limit=50))
    """

    def __init__(self, recorder: TraceRecorder) -> None:
        self.recorder = recorder

    def __call__(self, node_id: Any) -> "TracingApplication._Node":
        return TracingApplication._Node(self.recorder)

    class _Node:
        def __init__(self, recorder: TraceRecorder) -> None:
            self._recorder = recorder
            self._counter = 0

        def make_payload(self, node_id: Any, now: float) -> Any:
            self._counter += 1
            self._recorder.record(now, TraceKind.SEND, node_id, (node_id, self._counter))
            return None

        def on_deliver(self, node_id: Any, record: Any, verdict: Any, now: float) -> None:
            message_id = record.message.message_id
            self._recorder.record(now, TraceKind.DELIVER, node_id, message_id)
            if record.alert:
                self._recorder.record(now, TraceKind.ALERT, node_id, message_id)
            verdict_name = getattr(verdict, "value", None)
            if verdict_name == "violation":
                self._recorder.record(now, TraceKind.VIOLATION, node_id, message_id)
            elif verdict_name == "ambiguous":
                self._recorder.record(now, TraceKind.AMBIGUOUS, node_id, message_id)

        def on_leave(self, node_id: Any, now: float) -> None:
            self._recorder.record(now, TraceKind.LEAVE, node_id)
