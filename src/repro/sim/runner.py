"""Experiment runner: builds a system, drives it, measures it.

This module reproduces the methodology of Section 5.4: ``N`` nodes each
broadcasting with Poisson inter-send times (mean λ ms), a network whose
per-message propagation time is ``N(100, 20)`` ms with per-receiver skew
``N(d, 20)`` ms, the probabilistic causal ordering mechanism under test at
every node, and a vector-clock oracle classifying every delivery into
correct / proven-violation / ambiguous (the ε_min and ε_max bounds).

Entry point::

    from repro.sim import SimulationConfig, run_simulation
    result = run_simulation(SimulationConfig(n_nodes=100, r=100, k=4,
                                             duration_ms=60_000, seed=7))
    print(result.counters.eps_min, result.counters.eps_max)

Everything is pluggable: workload, delay model, dissemination strategy,
clock family member, key assigner, detector, churn model.
"""

from __future__ import annotations

import os
import time as _time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.clocks import EntryVectorClock
from repro.core.detector import DeliveryErrorDetector
from repro.core.errors import ConfigurationError
from repro.core.keyspace import (
    BalancedLoadKeyAssigner,
    HashKeyAssigner,
    KeyAssigner,
    PerfectKeyAssigner,
    RandomKeyAssigner,
    SequentialKeyAssigner,
)
from repro.core.combinatorics import num_key_sets, unrank_lex
from repro.core.protocol import CausalBroadcastEndpoint, Message
from repro.core.registry import (
    ClockBuildContext,
    clock_schemes,
    detector_names,
    get_clock_spec,
    get_detector_spec,
    get_engine_spec,
)
from repro.core.theory import optimal_k_int, p_error
from repro.sim.dissemination import DirectBroadcast, Dissemination, DisseminationContext
from repro.sim.engine import Simulator
from repro.sim.membership import (
    ChurnAction,
    ChurnEvent,
    ChurnModel,
    MembershipView,
    NoChurn,
    PoissonChurn,
)
from repro.sim.metrics import AlertConfusion, MetricSet
from repro.sim.network import DelayModel, GaussianDelayModel
from repro.sim.node import SimNode
from repro.sim.oracle import CausalityOracle, OracleCounters
from repro.sim.recovery import DeliveryLog, RecoveryStats, diff_logs
from repro.sim.rng import RandomSource
from repro.sim.workload import PoissonWorkload, Workload

__all__ = [
    "NodeApplication",
    "SimulationConfig",
    "SimulationResult",
    "run_simulation",
    "run_simulations",
    "resolve_workers",
]


class NodeApplication:
    """Optional per-node application layer driven by the runner.

    Subclass and pass a factory via
    :attr:`SimulationConfig.application_factory` to run real payloads
    (e.g. CRDT operations) through a simulated system.  The default
    implementations make the application a no-op.
    """

    def make_payload(self, node_id: int, now: float) -> object:
        """Produce the payload of one outgoing broadcast.

        Called right before the protocol send, so this is also the hook
        where an op-based application applies its operation locally.
        """
        return None

    def on_deliver(self, node_id: int, record, verdict, now: float) -> None:
        """Observe one remote delivery at ``node_id``.

        ``record`` is the protocol's :class:`~repro.core.protocol.DeliveryRecord`
        (payload, alert flag); ``verdict`` is the oracle's
        :class:`~repro.sim.oracle.DeliveryVerdict` — simulation-only ground
        truth a real deployment would not have, provided so experiments can
        correlate application anomalies with proven violations.
        """

    def on_leave(self, node_id: int, now: float) -> None:
        """Observe this node leaving the system."""

# Snapshot of the clock schemes registered at import time; validation
# resolves through the live registry, so schemes registered later work.
CLOCK_MODES = clock_schemes()
ASSIGNER_MODES = (
    "random",
    "random-colliding",
    "perfect",
    "balanced-load",
    "sequential",
    "hash",
)
DETECTOR_MODES = detector_names()


@dataclass
class SimulationConfig:
    """Parameters of one simulated run.

    The defaults follow the paper's Section 5.4.3 reference configuration,
    scaled only in population and duration (the paper uses N=1000 and
    >10⁸ messages; see DESIGN.md for the substitution note).

    Attributes:
        n_nodes: initial population ``N``.
        r: vector size ``R`` (ignored for ``lamport`` and ``vector`` clocks).
        k: entries per process ``K`` (ignored unless ``probabilistic``).
        clock: which clock family every node runs — ``probabilistic``
            (the paper), ``plausible`` (K=1 baseline), ``lamport`` (R=1
            baseline), ``vector`` (exact baseline), ``bloom``
            (per-event hashed keys), or any scheme registered through
            :func:`repro.core.registry.register_clock`.
        key_assigner: how key sets are distributed — ``random`` (the
            paper's distributed scheme, distinct set_ids), ``random-colliding``
            (no distinctness guarantee), ``perfect``, ``sequential``, ``hash``.
        workload: per-node send process; default Poisson with λ=5000 ms.
        delay_model: network delays; default the paper's N(100,20)+N(d,20).
        dissemination: message spreading; default reliable direct broadcast.
        detector: pre-delivery alert check (Algorithms 4/5):
            ``none`` | ``basic`` | ``refined``.
        detector_window_ms: recent-list retention for the refined detector;
            default 4x the mean network delay (≈ the paper's
            ``O(T_propagation)`` guidance).
        detector_max_entries: hard cap on the recent list.
        duration_ms: sending horizon; reception drains afterwards.
        max_messages: optional global cap on broadcasts (whichever of the
            horizon and the cap hits first ends sending).
        churn: membership dynamics; default static.
        seed: master seed; every random stream derives from it.
        track_latency: collect the send→deliver latency summary.
        max_pending: optional safety bound on any pending queue.
        application_factory: optional ``callable(node_id) -> NodeApplication``
            giving every node an application layer (payload production and
            delivery observation) — how the CRDT experiments and examples
            ride on the simulator.
        track_reception_order: also measure the *network's* reordering
            rate P_nc (fraction of receptions arriving out of causal
            order) — the system property the paper's bound
            ``P <= P_nc * P_err`` multiplies by.  Adds one oracle check
            per reception.
        recovery: the out-of-band anti-entropy procedure Section 4.2
            assumes — ``none`` (default), ``alert`` (run a session with a
            random peer ``recovery_delay_ms`` after an Algorithm 4/5
            alert fires, the paper's intended trigger), or ``periodic``
            (every node syncs every ``recovery_period_ms``; also repairs
            message loss, which raises no alert because the dependent
            messages simply stay pending).
        recovery_delay_ms / recovery_period_ms: trigger timing.
        recovery_log_size: per-node delivered-message window exchanged by
            anti-entropy sessions.
        engine: pending-queue drain strategy for every endpoint —
            ``auto`` (default: the naive drain until the pending queue
            deepens past the promotion threshold, then the vectorised
            entry-indexed buffer), ``indexed`` (always the buffer),
            ``naive`` (always the reference full-rescan drain; same
            delivery order, kept for differential testing and perf
            baselines), or ``hybrid`` (per-sender seq-sorted queues,
            probing only their fronts).
        metrics_path: when set, the run binds a
            :class:`repro.obs.MetricsRegistry` (labels ``mode="sim"``)
            to its metric set and appends one JSONL snapshot line to this
            path when the run finishes — the same format the live
            runtime's exporter writes, so ``repro stats`` and the CI
            sanity gates can read either.
        adaptive_k_interval_ms: enable *adaptive K* (an extension beyond
            the paper): every node periodically re-estimates the
            concurrency X from its own delivery rate and, when the
            integer optimum K = argmin P_err(R, K, X) moved, re-draws a
            key set of the new size.  Possible because timestamps carry
            the sender's keys, so nobody else needs to learn about the
            switch.  ``None`` (default) disables adaptation.
    """

    n_nodes: int
    r: int = 100
    k: int = 4
    clock: str = "probabilistic"
    key_assigner: str = "random"
    workload: Optional[Workload] = None
    delay_model: Optional[DelayModel] = None
    dissemination: Optional[Dissemination] = None
    detector: str = "basic"
    detector_window_ms: Optional[float] = None
    detector_max_entries: int = 256
    duration_ms: float = 60_000.0
    max_messages: Optional[int] = None
    churn: Optional[ChurnModel] = None
    seed: int = 0
    track_latency: bool = True
    max_pending: Optional[int] = None
    application_factory: Optional[object] = None
    track_reception_order: bool = False
    recovery: str = "none"
    recovery_delay_ms: float = 50.0
    recovery_period_ms: float = 2_000.0
    recovery_log_size: int = 4096
    engine: str = "auto"
    metrics_path: Optional[str] = None
    adaptive_k_interval_ms: Optional[float] = None

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on inconsistent parameters."""
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {self.n_nodes}")
        spec = get_clock_spec(self.clock)
        if self.key_assigner not in ASSIGNER_MODES:
            raise ConfigurationError(
                f"key_assigner must be one of {ASSIGNER_MODES}, got {self.key_assigner!r}"
            )
        get_detector_spec(self.detector)
        if spec.fixed_k is None and spec.fixed_r is None and not 1 <= self.k <= self.r:
            raise ConfigurationError(f"need 1 <= K <= R, got K={self.k}, R={self.r}")
        if spec.fixed_r is None and not spec.needs_dense_index and self.r < 1:
            raise ConfigurationError(f"R must be >= 1, got {self.r}")
        if self.duration_ms <= 0:
            raise ConfigurationError(f"duration_ms must be > 0, got {self.duration_ms}")
        if self.max_messages is not None and self.max_messages < 0:
            raise ConfigurationError(f"max_messages must be >= 0, got {self.max_messages}")
        if self.recovery not in ("none", "alert", "periodic"):
            raise ConfigurationError(
                f"recovery must be none|alert|periodic, got {self.recovery!r}"
            )
        if self.recovery_delay_ms < 0 or self.recovery_period_ms <= 0:
            raise ConfigurationError("recovery timings must be positive")
        if self.recovery_log_size <= 0:
            raise ConfigurationError("recovery_log_size must be positive")
        get_engine_spec(self.engine)
        if self.adaptive_k_interval_ms is not None:
            if self.adaptive_k_interval_ms <= 0:
                raise ConfigurationError("adaptive_k_interval_ms must be > 0")
            if self.clock != "probabilistic":
                raise ConfigurationError(
                    "adaptive K only applies to the probabilistic clock"
                )


@dataclass
class SimulationResult:
    """Everything one run measured."""

    config: SimulationConfig
    counters: OracleCounters
    alerts: AlertConfusion
    latency: Dict[str, float]
    pending: Dict[str, float]
    sent: int
    delivered_remote: int
    duplicates: int
    undelivered_messages: int
    stuck_pending: int
    sim_time_ms: float
    events: int
    wall_seconds: float
    joins: int
    leaves: int
    mean_membership: float
    measured_concurrency: float
    measured_p_nc: Optional[float]
    """Out-of-causal-order reception rate (None unless
    ``track_reception_order`` was enabled)."""

    recovery_sessions: int = 0
    """Anti-entropy sessions executed (0 when recovery is 'none')."""

    recovery_repaired: int = 0
    """Messages applied out-of-band by anti-entropy."""

    adaptive_rekeys: int = 0
    """Key-set re-draws performed by the adaptive-K controller."""

    final_k_values: Tuple[int, ...] = ()
    """Distribution of K across live nodes at the end of the run."""

    @property
    def eps_min(self) -> float:
        """Lower bound on the causal-violation rate (proven violations)."""
        return self.counters.eps_min

    @property
    def eps_max(self) -> float:
        """Upper bound on the causal-violation rate (ambiguous included)."""
        return self.counters.eps_max

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        return (
            f"{self.config.clock} clock (R={self.config.r}, K={self.config.k}), "
            f"N={self.config.n_nodes}: sent={self.sent}, "
            f"delivered={self.delivered_remote}, "
            f"eps_min={self.eps_min:.3e}, eps_max={self.eps_max:.3e}, "
            f"alert_rate={self.alerts.alert_rate:.3e}, "
            f"mean latency={self.latency.get('mean', 0.0):.1f} ms, "
            f"X={self.measured_concurrency:.1f}"
        )


class _Run(DisseminationContext):
    """Mutable state of one simulation execution."""

    def __init__(self, config: SimulationConfig) -> None:
        config.validate()
        self._config = config
        self._sim = Simulator()
        self._rng_root = RandomSource(seed=config.seed)
        self._rng_network = self._rng_root.spawn("network")
        self._rng_workload = self._rng_root.spawn("workload")
        self._rng_keys = self._rng_root.spawn("keys")
        self._rng_churn = self._rng_root.spawn("churn")

        self._workload = config.workload if config.workload is not None else PoissonWorkload(5000.0)
        self._delay_model = (
            config.delay_model if config.delay_model is not None else GaussianDelayModel()
        )
        self._dissemination = (
            config.dissemination
            if config.dissemination is not None
            else DirectBroadcast(self._delay_model)
        )
        attach_clock = getattr(self._dissemination, "attach_clock", None)
        if attach_clock is not None:
            # Fault-injection wrappers need the simulation clock.
            attach_clock(lambda: self._sim.now)

        churn = config.churn if config.churn is not None else NoChurn()
        self._churn_events = churn.events(self._rng_churn, config.duration_ms)
        self._min_population = getattr(churn, "min_population", 2)
        joins = sum(1 for event in self._churn_events if event.action is ChurnAction.JOIN)
        self._capacity = config.n_nodes + joins

        self._oracle = CausalityOracle(
            capacity=self._capacity, track_receptions=config.track_reception_order
        )
        self._membership = MembershipView()
        self._nodes: Dict[int, SimNode] = {}
        self._metrics = MetricSet()
        if config.metrics_path is not None:
            from repro.obs import MetricsRegistry

            self._metrics.bind_registry(MetricsRegistry(labels={"mode": "sim"}))
        self._assigner = self._make_assigner()
        self._effective_r = self._effective_vector_size()
        self._global_key_sum = np.zeros(self._effective_r, dtype=np.int64)
        self._global_true_sends = np.zeros(self._capacity, dtype=np.int64)
        self._applications: Dict[int, NodeApplication] = {}
        self._delivery_logs: Dict[int, DeliveryLog] = {}
        self._recovery_stats = RecoveryStats()
        self._recovery_pending: set = set()
        self._rng_recovery = self._rng_root.spawn("recovery")
        self._rng_adaptive = self._rng_root.spawn("adaptive")
        self._adaptive_last_delivered: Dict[int, int] = {}
        self._adaptive_rekeys = 0
        self._sent = 0
        self._next_node_id = 0
        self._members_cache: Tuple[int, ...] = ()
        self._members_dirty = True
        # Time-weighted membership integral for the mean population.
        self._pop_integral = 0.0
        self._pop_last_change = 0.0

    # ------------------------------------------------------------------
    # DisseminationContext interface
    # ------------------------------------------------------------------

    @property
    def rng(self) -> RandomSource:
        return self._rng_network

    def members(self) -> Tuple[int, ...]:
        if self._members_dirty:
            self._members_cache = self._membership.members()
            self._members_dirty = False
        return self._members_cache

    def schedule_receive(self, node_id: int, message: Message, delay_ms: float) -> None:
        self._sim.schedule(delay_ms, self._handle_receive, (node_id, message))

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _effective_vector_size(self) -> int:
        spec = get_clock_spec(self._config.clock)
        if spec.fixed_r is not None:
            return spec.fixed_r
        if spec.needs_dense_index:
            return self._capacity
        return self._config.r

    def _make_assigner(self) -> Optional[KeyAssigner]:
        spec = get_clock_spec(self._config.clock)
        if not spec.needs_key_assignment:
            return None
        k = spec.fixed_k if spec.fixed_k is not None else self._config.k
        name = self._config.key_assigner
        if name == "random":
            return RandomKeyAssigner(self._config.r, k, rng=self._rng_keys)
        if name == "random-colliding":
            return RandomKeyAssigner(
                self._config.r, k, rng=self._rng_keys, avoid_collisions=False
            )
        if name == "perfect":
            return PerfectKeyAssigner(self._config.r, k)
        if name == "balanced-load":
            return BalancedLoadKeyAssigner(self._config.r, k)
        if name == "sequential":
            return SequentialKeyAssigner(self._config.r, k)
        if name == "hash":
            return HashKeyAssigner(self._config.r, k)
        raise ConfigurationError(f"unknown key assigner {name!r}")

    def _make_detector(self) -> DeliveryErrorDetector:
        window = self._config.detector_window_ms
        if window is None:
            window = 4.0 * self._delay_model.mean_delay()
        return get_detector_spec(self._config.detector).build(
            window=window, max_entries=self._config.detector_max_entries
        )

    def _make_clock(self, slot: int) -> Tuple[EntryVectorClock, Optional[object]]:
        spec = get_clock_spec(self._config.clock)
        assignment = None
        keys: Tuple[int, ...] = ()
        if spec.needs_key_assignment:
            assignment = self._assigner.assign(slot)
            keys = tuple(assignment.keys)
        context = ClockBuildContext(
            node_id=slot,
            r=self._effective_r if spec.needs_dense_index else self._config.r,
            k=spec.fixed_k if spec.fixed_k is not None else self._config.k,
            n=self._capacity,
            index=slot,
            keys=keys,
        )
        return spec.factory(context), assignment

    def _spawn_node(self, now: float, bootstrap: bool) -> SimNode:
        node_id = self._next_node_id
        self._next_node_id += 1
        slot = self._oracle.register_node(
            node_id,
            initial_knowledge=self._global_true_sends.copy() if bootstrap else None,
        )
        clock, assignment = self._make_clock(slot)
        if bootstrap:
            clock.initialize_from(self._global_key_sum)
        endpoint = CausalBroadcastEndpoint(
            process_id=node_id,
            clock=clock,
            detector=self._make_detector(),
            max_pending=self._config.max_pending,
            engine=self._config.engine,
        )
        node = SimNode(
            node_id=node_id,
            slot=slot,
            endpoint=endpoint,
            assignment=assignment,
            joined_at=now,
            bootstrap_sends=self._global_true_sends.copy() if bootstrap else None,
        )
        self._nodes[node_id] = node
        if self._config.recovery != "none":
            self._delivery_logs[node_id] = DeliveryLog(
                max_entries=self._config.recovery_log_size
            )
            if self._config.recovery == "periodic":
                self._sim.schedule(
                    self._rng_recovery.uniform(0, self._config.recovery_period_ms),
                    self._handle_periodic_recovery,
                    node_id,
                )
        if self._config.adaptive_k_interval_ms is not None:
            self._sim.schedule(
                self._rng_adaptive.uniform(
                    0.5 * self._config.adaptive_k_interval_ms,
                    1.5 * self._config.adaptive_k_interval_ms,
                ),
                self._handle_adaptive_k,
                node_id,
            )
        factory = self._config.application_factory
        if factory is not None:
            self._applications[node_id] = factory(node_id)
        self._track_population()
        self._membership.add(node_id)
        self._members_dirty = True
        return node

    def _track_population(self) -> None:
        now = self._sim.now
        self._pop_integral += len(self._membership) * (now - self._pop_last_change)
        self._pop_last_change = now

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _schedule_next_send(self, node_id: int) -> None:
        interval = self._workload.next_interval(self._rng_workload, node_id)
        if interval == float("inf"):
            return
        next_time = self._sim.now + interval
        if next_time > self._config.duration_ms:
            return
        self._sim.schedule_at(next_time, self._handle_send, node_id)

    def _handle_send(self, node_id: int) -> None:
        node = self._nodes.get(node_id)
        if node is None or not node.alive:
            return
        budget = self._config.max_messages
        if budget is not None and self._sent >= budget:
            return
        application = self._applications.get(node_id)
        payload = (
            application.make_payload(node_id, self._sim.now)
            if application is not None
            else None
        )
        message = node.endpoint.broadcast(payload=payload, now=self._sim.now)
        self._sent += 1
        log = self._delivery_logs.get(node_id)
        if log is not None:
            log.record(message)
        self._global_key_sum[message.timestamp.sender_keys_array] += 1
        self._global_true_sends[node.slot] += 1
        fanout = self._dissemination.disseminate(self, message, node_id)
        if self._config.recovery != "none":
            # Anti-entropy eventually reaches every member, so the
            # delivery budget is the full remote membership even when the
            # dissemination layer loses copies.
            fanout = max(fanout, len(self.members()) - 1)
        self._oracle.on_send(node_id, message.message_id, self._sim.now, fanout)
        self._schedule_next_send(node_id)

    def _handle_receive(self, event: Tuple[int, Message]) -> None:
        node_id, message = event
        node = self._nodes.get(node_id)
        if node is None or not node.alive:
            # Exactly-once budget accounting for departed receivers: only
            # the first copy counts, and only if the node was a member
            # when the message was sent (stale gossip views route copies
            # to nodes that left earlier — those were never budgeted).
            if node is not None and node.endpoint.mark_seen(message.message_id):
                send_time = self._oracle.send_time_of(message.message_id)
                if (
                    send_time is not None
                    and node.joined_at <= send_time
                    and (node.left_at is None or send_time < node.left_at)
                ):
                    self._oracle.adjust_fanout(message.message_id, -1)
            return
        endpoint = node.endpoint
        if node.bootstrap_sends is not None and not endpoint.has_seen(
            message.message_id
        ):
            # A late joiner's state transfer already covers messages sent
            # before its join; copies routed here by stale views or
            # recovery must not be re-applied (they were never budgeted
            # for this node and would double-count clock increments).
            sender_slot = self._nodes[message.sender].slot
            if message.seq <= int(node.bootstrap_sends[sender_slot]):
                endpoint.mark_seen(message.message_id)
                return
        first_copy = not endpoint.has_seen(message.message_id)
        if first_copy and self._config.track_reception_order:
            self._oracle.observe_reception(node_id, message.message_id)
        records = endpoint.on_receive(message, self._sim.now)
        if first_copy:
            self._dissemination.on_first_reception(self, message, node_id)
        now = self._sim.now
        application = self._applications.get(node_id)
        log = self._delivery_logs.get(node_id)
        alert_fired = False
        for record in records:
            classified = self._oracle.classify_delivery(
                node_id, record.message.message_id, now
            )
            self._metrics.observe_alert(record.alert, classified.verdict)
            alert_fired = alert_fired or record.alert
            if log is not None:
                log.record(record.message)
            if self._config.track_latency:
                self._metrics.observe_latency(classified.latency_ms)
            if application is not None:
                application.on_deliver(node_id, record, classified.verdict, now)
        if (
            alert_fired
            and self._config.recovery == "alert"
            and node_id not in self._recovery_pending
        ):
            # The paper's loop: an alert marks a possible violation, so
            # schedule the costly procedure — once per outstanding alert.
            self._recovery_pending.add(node_id)
            self._sim.schedule(
                self._config.recovery_delay_ms, self._handle_recovery, node_id
            )
        self._metrics.observe_pending(endpoint.pending_count)

    def _handle_adaptive_k(self, node_id: int) -> None:
        """Periodic re-dimensioning: re-estimate X, re-draw keys if the
        optimal K moved.  Uncoordinated by design — exactly like the
        initial random draw of Section 4.1.3."""
        node = self._nodes.get(node_id)
        if node is None or not node.alive:
            return
        interval = self._config.adaptive_k_interval_ms
        delivered = node.endpoint.stats.delivered
        window = delivered - self._adaptive_last_delivered.get(node_id, 0)
        self._adaptive_last_delivered[node_id] = delivered
        receive_rate = window / (interval / 1000.0)
        x_estimate = receive_rate * self._delay_model.mean_delay() / 1000.0
        if x_estimate > 0.1:
            r = self._config.r
            current_k = node.endpoint.clock.k
            k_optimal = optimal_k_int(r, x_estimate, k_max=min(r, 16))
            # Hysteresis: only pay a re-draw when it buys a material
            # reduction of the covering probability; P_err is nearly flat
            # around its optimum, so adjacent-K flapping is pure churn.
            if k_optimal != current_k and p_error(r, k_optimal, x_estimate) < (
                0.8 * p_error(r, current_k, x_estimate)
            ):
                set_id = self._rng_adaptive.integer(0, num_key_sets(r, k_optimal))
                node.endpoint.clock.rekey(unrank_lex(set_id, r, k_optimal))
                self._adaptive_rekeys += 1
        if self._sim.now + interval <= self._config.duration_ms:
            self._sim.schedule(interval, self._handle_adaptive_k, node_id)

    def _handle_periodic_recovery(self, node_id: int) -> None:
        node = self._nodes.get(node_id)
        if node is None or not node.alive:
            return
        self._run_recovery_session(node_id)
        # Keep syncing a few periods into the drain so losses from the
        # final sending window are repaired too.
        horizon = self._config.duration_ms + 4 * self._config.recovery_period_ms
        if self._sim.now + self._config.recovery_period_ms <= horizon:
            self._sim.schedule(
                self._config.recovery_period_ms,
                self._handle_periodic_recovery,
                node_id,
            )

    def _handle_recovery(self, node_id: int) -> None:
        self._recovery_pending.discard(node_id)
        node = self._nodes.get(node_id)
        if node is None or not node.alive:
            return
        self._run_recovery_session(node_id)

    def _run_recovery_session(self, node_id: int) -> None:
        """One anti-entropy exchange with a random live peer.

        Messages the peer has delivered but this node never received are
        fed through the normal reception path, so the delivery condition,
        oracle accounting, and application callbacks all apply; the
        protocol's duplicate filter absorbs the overlap when the original
        copy arrives later.
        """
        if len(self._membership) < 2:
            return
        peer_id = node_id
        while peer_id == node_id:
            peer_id = self._membership.sample(self._rng_recovery)
        own_log = self._delivery_logs.get(node_id)
        peer_log = self._delivery_logs.get(peer_id)
        if own_log is None or peer_log is None:
            return
        missing_here, _ = diff_logs(own_log, peer_log)
        node = self._nodes[node_id]
        endpoint = node.endpoint
        repaired = 0
        for message in missing_here:
            if endpoint.has_seen(message.message_id):
                continue
            if node.bootstrap_sends is not None:
                # Messages sent before this node joined are already part
                # of its state transfer: replaying them would double-count
                # their clock increments (and their oracle records may be
                # gone).
                sender_slot = self._nodes[message.sender].slot
                if message.seq <= int(node.bootstrap_sends[sender_slot]):
                    continue
            repaired += 1
            self._handle_receive((node_id, message))
        self._recovery_stats.add(repaired)

    def _handle_churn(self, event: ChurnEvent) -> None:
        # Tolerates bare-action callers (the pre-scripted-target API).
        action = getattr(event, "action", event)
        target = getattr(event, "node_id", None)
        if action is ChurnAction.JOIN:
            node = self._spawn_node(self._sim.now, bootstrap=True)
            self._schedule_next_send(node.node_id)
            return
        if len(self._membership) <= self._min_population:
            return
        if target is not None:
            if target not in self._membership:
                # The scripted victim already left (or never joined by
                # this time) — a targeted leave is not retargetable.
                return
            node_id = target
        else:
            node_id = self._membership.sample(self._rng_churn)
        node = self._nodes[node_id]
        self._track_population()
        self._membership.remove(node_id)
        self._members_dirty = True
        node.leave(self._sim.now)
        forget = getattr(self._dissemination, "forget", None)
        if forget is not None:
            # Partial-view transports drop the departed node's own view;
            # its id ages out of other views through piggyback turnover.
            forget(node_id)
        application = self._applications.get(node_id)
        if application is not None:
            application.on_leave(node_id, self._sim.now)
        if self._assigner is not None and node.assignment is not None:
            self._assigner.release(node.slot)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(self) -> SimulationResult:
        """Build the system, run to drain, and measure."""
        started = _time.perf_counter()
        for _ in range(self._config.n_nodes):
            self._spawn_node(0.0, bootstrap=False)
        for node_id in list(self._nodes):
            self._schedule_next_send(node_id)
        for event in self._churn_events:
            self._sim.schedule_at(event.time, self._handle_churn, event)
        self._sim.run()
        self._track_population()
        wall = _time.perf_counter() - started
        result = self._build_result(wall)
        if self._config.metrics_path is not None:
            self._export_metrics()
        return result

    def _export_metrics(self) -> None:
        """Append one end-of-run registry snapshot (JSONL, exporter format)."""
        from repro.obs import JsonlExporter

        with JsonlExporter(self._config.metrics_path) as exporter:
            exporter.export(self._metrics.registry.snapshot(), ts=self._sim.now)

    def _build_result(self, wall_seconds: float) -> SimulationResult:
        delivered_remote = self._oracle.totals.deliveries
        duplicates = sum(node.endpoint.stats.duplicates for node in self._nodes.values())
        stuck = sum(
            node.endpoint.pending_count for node in self._nodes.values() if node.alive
        )
        sim_time = self._sim.now
        mean_membership = self._pop_integral / sim_time if sim_time > 0 else float(
            len(self._membership)
        )
        # Rate over the sending horizon: deliveries trail into the drain
        # tail, but steady-state traffic is defined by the horizon.
        window_ms = min(sim_time, self._config.duration_ms)
        receive_rate = (
            delivered_remote / (window_ms / 1000.0) / mean_membership
            if window_ms > 0 and mean_membership > 0
            else 0.0
        )
        concurrency = receive_rate * self._delay_model.mean_delay() / 1000.0
        return SimulationResult(
            config=self._config,
            counters=self._oracle.totals,
            alerts=self._metrics.alerts,
            latency=self._metrics.latency.as_dict(),
            pending=self._metrics.pending.as_dict(),
            sent=self._sent,
            delivered_remote=delivered_remote,
            duplicates=duplicates,
            undelivered_messages=self._oracle.outstanding_messages,
            stuck_pending=stuck,
            sim_time_ms=sim_time,
            events=self._sim.processed_events,
            wall_seconds=wall_seconds,
            joins=self._membership.joined_total - self._config.n_nodes,
            leaves=self._membership.left_total,
            mean_membership=mean_membership,
            measured_concurrency=concurrency,
            measured_p_nc=(
                self._oracle.p_nc_measured
                if self._config.track_reception_order
                else None
            ),
            recovery_sessions=self._recovery_stats.sessions,
            recovery_repaired=self._recovery_stats.messages_repaired,
            adaptive_rekeys=self._adaptive_rekeys,
            final_k_values=tuple(
                node.endpoint.clock.k
                for node in self._nodes.values()
                if node.alive
            ),
        )


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Run one simulated experiment and return its measurements.

    Deterministic: the same config (seed included) replays the same run.
    """
    return _Run(config).execute()


def resolve_workers(workers: Optional[int] = None, jobs: Optional[int] = None) -> int:
    """How many processes a simulation fan-out should use.

    ``workers=None`` consults the ``REPRO_SIM_WORKERS`` environment
    variable, falling back to the machine's core count — the paper-figure
    parameter grids are embarrassingly parallel, so they should use all
    cores unless told otherwise.  The result is clamped to ``jobs`` when
    given (no point forking more processes than runs).
    """
    if workers is None:
        raw = os.environ.get("REPRO_SIM_WORKERS", "")
        if raw:
            try:
                workers = int(raw)
            except ValueError as exc:
                raise ConfigurationError(
                    f"REPRO_SIM_WORKERS must be an integer, got {raw!r}"
                ) from exc
        else:
            workers = os.cpu_count() or 1
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if jobs is not None:
        workers = min(workers, max(1, jobs))
    return workers


def run_simulations(
    configs: Iterable[SimulationConfig], workers: Optional[int] = None
) -> List[SimulationResult]:
    """Run many independent configs, fanning out across processes.

    Results come back in input order and are bit-identical to a
    sequential loop (every run is seeded; processes share nothing).
    With one core, one config, or ``workers=1`` this degrades to the
    plain loop — no pool is spawned.
    """
    configs = list(configs)
    count = resolve_workers(workers, jobs=len(configs))
    if count <= 1 or len(configs) <= 1:
        return [run_simulation(config) for config in configs]
    with ProcessPoolExecutor(max_workers=count) as pool:
        return list(pool.map(run_simulation, configs))
