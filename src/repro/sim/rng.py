"""Re-export of :class:`repro.util.rng.RandomSource`.

The implementation lives in :mod:`repro.util.rng` so that core modules can
use it without importing the whole simulation package; this alias keeps
the natural ``repro.sim.rng`` spelling working for simulator code.
"""

from repro.util.rng import RandomSource

__all__ = ["RandomSource"]
