"""Message dissemination strategies.

The paper assumes "a reliable broadcast mechanism" underneath the causal
ordering layer, and motivates Algorithm 5's recent-messages list by noting
that gossip-based broadcast layers keep such a list anyway.  Two
strategies are provided:

* :class:`DirectBroadcast` — the paper's measured setting: the sender
  transmits to every current member; each receiver's arrival time follows
  the two-stage delay model.  Optional loss and duplication probabilities
  turn it into an unreliable medium for fault-injection tests.

* :class:`PushGossip` — infect-and-die push gossip (Definition 2 /
  Eugster et al.'s lightweight probabilistic broadcast, cited as [5]):
  the sender pushes to ``fanout`` random members; every member relays a
  message exactly once, on first reception, to ``fanout`` random members.
  Duplicates are frequent (the endpoint's duplicate filter absorbs them)
  and coverage is probabilistic — complete with high probability when
  ``fanout`` is Ω(log N).

Strategies talk to the runner through the small
:class:`DisseminationContext` interface so they stay testable in
isolation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.core.protocol import Message
from repro.sim.network import DelayModel
from repro.sim.rng import RandomSource

__all__ = ["DisseminationContext", "Dissemination", "DirectBroadcast", "PushGossip"]

ProcessId = Hashable


class DisseminationContext(ABC):
    """What a dissemination strategy may ask of its host (the runner)."""

    @abstractmethod
    def members(self) -> Tuple[ProcessId, ...]:
        """Current membership."""

    @abstractmethod
    def schedule_receive(self, node_id: ProcessId, message: Message, delay_ms: float) -> None:
        """Deliver ``message`` to ``node_id``'s endpoint after ``delay_ms``."""

    @property
    @abstractmethod
    def rng(self) -> RandomSource:
        """The network randomness stream."""


class Dissemination(ABC):
    """Strategy deciding who receives a broadcast, and when."""

    def __init__(self, delay_model: DelayModel) -> None:
        self._delay_model = delay_model

    @property
    def delay_model(self) -> DelayModel:
        """The delay model arrivals are drawn from."""
        return self._delay_model

    @abstractmethod
    def disseminate(
        self, context: DisseminationContext, message: Message, sender_id: ProcessId
    ) -> int:
        """Start disseminating a fresh broadcast.

        Returns the number of *distinct* remote members the message is
        expected to reach (the oracle's delivery budget for it).
        """

    def on_first_reception(
        self, context: DisseminationContext, message: Message, node_id: ProcessId
    ) -> None:
        """Hook invoked by the runner when ``node_id`` receives a message
        it had not seen before.  Gossip relays from here; direct broadcast
        does nothing."""


class DirectBroadcast(Dissemination):
    """Sender-to-all dissemination with the paper's two-stage delays.

    Args:
        delay_model: per-message base delay + per-receiver arrival skew.
        loss_rate: probability that one receiver's copy is dropped
            (0 = the paper's reliable medium).
        duplicate_rate: probability that one receiver's copy arrives
            twice (the duplicate follows an independent arrival draw).
    """

    def __init__(
        self, delay_model: DelayModel, loss_rate: float = 0.0, duplicate_rate: float = 0.0
    ) -> None:
        super().__init__(delay_model)
        for name, value in (("loss_rate", loss_rate), ("duplicate_rate", duplicate_rate)):
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1), got {value}")
        self._loss_rate = loss_rate
        self._duplicate_rate = duplicate_rate

    def disseminate(
        self, context: DisseminationContext, message: Message, sender_id: ProcessId
    ) -> int:
        rng = context.rng
        base = self._delay_model.sample_base(rng)
        reached = 0
        for node_id in context.members():
            if node_id == sender_id:
                continue
            if self._loss_rate and rng.random() < self._loss_rate:
                continue
            context.schedule_receive(
                node_id, message, self._delay_model.sample_arrival(rng, base)
            )
            reached += 1
            if self._duplicate_rate and rng.random() < self._duplicate_rate:
                context.schedule_receive(
                    node_id, message, self._delay_model.sample_arrival(rng, base)
                )
        return reached


class PushGossip(Dissemination):
    """Infect-and-die push gossip.

    Every node (the sender included) pushes a message it sees for the
    first time to ``fanout`` members drawn uniformly at random; it never
    relays the same message again.  Total transmissions are bounded by
    ``fanout × N`` per message, and coverage is complete w.h.p. once
    ``fanout ≳ ln N + c``.

    The oracle budget returned by :meth:`disseminate` is the full remote
    membership; copies that never reach a node simply leave the budget
    unconsumed (reported by the runner as ``undelivered``).
    """

    def __init__(self, delay_model: DelayModel, fanout: int = 4) -> None:
        super().__init__(delay_model)
        if fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
        self._fanout = fanout

    @property
    def fanout(self) -> int:
        """Targets contacted per push."""
        return self._fanout

    def disseminate(
        self, context: DisseminationContext, message: Message, sender_id: ProcessId
    ) -> int:
        self._push(context, message, sender_id)
        return max(0, len(context.members()) - 1)

    def on_first_reception(
        self, context: DisseminationContext, message: Message, node_id: ProcessId
    ) -> None:
        self._push(context, message, node_id)

    def _push(
        self, context: DisseminationContext, message: Message, from_node: ProcessId
    ) -> None:
        rng = context.rng
        members = context.members()
        candidates = [node_id for node_id in members if node_id != from_node]
        if not candidates:
            return
        count = min(self._fanout, len(candidates))
        for target in rng.sample(candidates, count):
            base = self._delay_model.sample_base(rng)
            context.schedule_receive(
                target, message, self._delay_model.sample_arrival(rng, base)
            )
