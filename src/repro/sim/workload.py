"""Workload generators: when each node broadcasts (Section 5.4).

The paper's experiments generate messages "according to a Poisson
distribution of parameter λ", where λ is the *mean interval between two
messages of one node*, in milliseconds (λ = 5000 means one message per
node every 5 s on average).  :class:`PoissonWorkload` is that model;
the other generators explore departures from it:

* :class:`UniformJitterWorkload` — near-periodic senders (low variance),
  the regime where causal order is almost free;
* :class:`BurstyWorkload` — a node alternates silences and rapid bursts,
  the worst case for covering concurrency;
* :class:`HotspotWorkload` — a fraction of nodes is much chattier, as in
  real collaborative sessions;
* :class:`ReplayWorkload` — replays an explicit trace of send times
  (deterministic tests and recorded application traces).

A generator answers one question per call: *given that node ``node_id``
just sent at this moment, how long until its next send?*
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Hashable, List, Sequence

from repro.core.errors import ConfigurationError
from repro.sim.rng import RandomSource

__all__ = [
    "Workload",
    "PoissonWorkload",
    "UniformJitterWorkload",
    "BurstyWorkload",
    "HotspotWorkload",
    "ReplayWorkload",
]

ProcessId = Hashable


class Workload(ABC):
    """Per-node send-interval process."""

    @abstractmethod
    def next_interval(self, rng: RandomSource, node_id: ProcessId) -> float:
        """Milliseconds from now until ``node_id``'s next broadcast."""

    @abstractmethod
    def mean_interval(self) -> float:
        """Long-run mean send interval per node (ms) — the effective λ,
        used to predict the concurrency X and the optimal K."""


class PoissonWorkload(Workload):
    """The paper's workload: exponential inter-send times, mean λ ms."""

    def __init__(self, mean_interval_ms: float) -> None:
        if mean_interval_ms <= 0:
            raise ConfigurationError(f"λ must be > 0 ms, got {mean_interval_ms}")
        self._mean = mean_interval_ms

    def next_interval(self, rng: RandomSource, node_id: ProcessId) -> float:
        return rng.exponential(self._mean)

    def mean_interval(self) -> float:
        return self._mean


class UniformJitterWorkload(Workload):
    """Near-periodic senders: interval uniform in ``mean ± jitter``."""

    def __init__(self, mean_interval_ms: float, jitter_ms: float = 0.0) -> None:
        if mean_interval_ms <= 0:
            raise ConfigurationError(f"mean interval must be > 0, got {mean_interval_ms}")
        if not 0 <= jitter_ms < mean_interval_ms:
            raise ConfigurationError(
                f"jitter must lie in [0, mean), got jitter={jitter_ms}, mean={mean_interval_ms}"
            )
        self._mean = mean_interval_ms
        self._jitter = jitter_ms

    def next_interval(self, rng: RandomSource, node_id: ProcessId) -> float:
        if self._jitter == 0:
            return self._mean
        return rng.uniform(self._mean - self._jitter, self._mean + self._jitter)

    def mean_interval(self) -> float:
        return self._mean


class BurstyWorkload(Workload):
    """Bursts of rapid messages separated by long silences.

    A node sends ``burst_size`` messages ``intra_gap_ms`` apart, then stays
    silent for an exponential pause with mean ``pause_ms``.
    """

    def __init__(self, burst_size: int, intra_gap_ms: float, pause_ms: float) -> None:
        if burst_size < 1:
            raise ConfigurationError(f"burst_size must be >= 1, got {burst_size}")
        if intra_gap_ms <= 0 or pause_ms <= 0:
            raise ConfigurationError("intra_gap_ms and pause_ms must be > 0")
        self._burst_size = burst_size
        self._intra_gap = intra_gap_ms
        self._pause = pause_ms
        self._position: Dict[ProcessId, int] = {}

    def next_interval(self, rng: RandomSource, node_id: ProcessId) -> float:
        sent_in_burst = self._position.get(node_id, 0)
        if sent_in_burst + 1 < self._burst_size:
            self._position[node_id] = sent_in_burst + 1
            return self._intra_gap
        self._position[node_id] = 0
        return rng.exponential(self._pause)

    def mean_interval(self) -> float:
        total = (self._burst_size - 1) * self._intra_gap + self._pause
        return total / self._burst_size


class HotspotWorkload(Workload):
    """A fraction of nodes sends ``hot_factor`` times faster.

    Node heat is decided by a stable hash of the node id so the choice
    does not depend on iteration order.
    """

    def __init__(
        self, base_interval_ms: float, hot_fraction: float = 0.1, hot_factor: float = 10.0
    ) -> None:
        if base_interval_ms <= 0:
            raise ConfigurationError(f"base interval must be > 0, got {base_interval_ms}")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ConfigurationError(f"hot_fraction must lie in [0, 1], got {hot_fraction}")
        if hot_factor < 1.0:
            raise ConfigurationError(f"hot_factor must be >= 1, got {hot_factor}")
        self._base = base_interval_ms
        self._hot_fraction = hot_fraction
        self._hot_factor = hot_factor

    def is_hot(self, node_id: ProcessId) -> bool:
        """Whether this node belongs to the chatty minority."""
        import hashlib

        digest = hashlib.sha256(repr(node_id).encode("utf-8")).digest()
        return (int.from_bytes(digest[:8], "big") / 2**64) < self._hot_fraction

    def next_interval(self, rng: RandomSource, node_id: ProcessId) -> float:
        mean = self._base / self._hot_factor if self.is_hot(node_id) else self._base
        return rng.exponential(mean)

    def mean_interval(self) -> float:
        hot_rate = self._hot_fraction * self._hot_factor / self._base
        cold_rate = (1.0 - self._hot_fraction) / self._base
        return 1.0 / (hot_rate + cold_rate)


class ReplayWorkload(Workload):
    """Replays explicit per-node traces of inter-send intervals.

    Once a node's trace is exhausted it falls silent (interval = +inf,
    which the runner interprets as "no further sends").
    """

    SILENT = float("inf")

    def __init__(self, traces: Dict[ProcessId, Sequence[float]]) -> None:
        if not traces:
            raise ConfigurationError("replay workload needs at least one trace")
        self._traces: Dict[ProcessId, List[float]] = {}
        for node_id, intervals in traces.items():
            values = [float(v) for v in intervals]
            if any(v <= 0 for v in values):
                raise ConfigurationError(f"trace of {node_id!r} contains non-positive gaps")
            self._traces[node_id] = values
        self._cursor: Dict[ProcessId, int] = {node_id: 0 for node_id in traces}

    def next_interval(self, rng: RandomSource, node_id: ProcessId) -> float:
        trace = self._traces.get(node_id)
        if trace is None:
            return self.SILENT
        cursor = self._cursor[node_id]
        if cursor >= len(trace):
            return self.SILENT
        self._cursor[node_id] = cursor + 1
        return trace[cursor]

    def mean_interval(self) -> float:
        gaps = [gap for trace in self._traces.values() for gap in trace]
        return sum(gaps) / len(gaps) if gaps else self.SILENT
