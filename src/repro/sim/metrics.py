"""Metric collectors for simulation runs.

Gathers three families of measurements:

* **ordering quality** — the ε_min / ε_max error-rate bounds from the
  oracle (:class:`repro.sim.oracle.OracleCounters`);
* **alert quality** — how Algorithm 4/5 alerts correlate with the oracle's
  verdicts (precision / recall, with ambiguous deliveries reported
  separately because their ground truth is undecidable);
* **performance** — delivery latency (send→deliver) and pending-queue
  pressure, via a streaming summary that stays O(1) in memory no matter
  how many deliveries the run produces (exact moments + reservoir sample
  for quantiles).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.errors import ConfigurationError
from repro.sim.oracle import DeliveryVerdict
from repro.sim.rng import RandomSource

__all__ = ["StreamingSummary", "AlertConfusion", "MetricSet"]


class StreamingSummary:
    """O(1)-memory summary of a stream of numbers.

    Exact count/mean/variance (Welford) and min/max; approximate quantiles
    from a fixed-size uniform reservoir sample.
    """

    def __init__(self, reservoir_size: int = 4096, rng: Optional[RandomSource] = None) -> None:
        if reservoir_size <= 0:
            raise ConfigurationError(f"reservoir_size must be positive, got {reservoir_size}")
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._reservoir: List[float] = []
        self._reservoir_size = reservoir_size
        self._rng = rng if rng is not None else RandomSource(seed=0x5EED).spawn("reservoir")

    def observe(self, value: float) -> None:
        """Add one observation."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._reservoir) < self._reservoir_size:
            self._reservoir.append(value)
        else:
            slot = self._rng.integer(0, self._count)
            if slot < self._reservoir_size:
                self._reservoir[slot] = value

    @property
    def count(self) -> int:
        """Number of observations."""
        return self._count

    @property
    def mean(self) -> float:
        """Exact running mean (0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); 0 with fewer than two observations."""
        return self._m2 / (self._count - 1) if self._count > 1 else 0.0

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest observation (0 when empty)."""
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        """Largest observation (0 when empty)."""
        return self._max if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile from the reservoir (q in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must lie in [0, 1], got {q}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[index]

    def as_dict(self) -> dict:
        """Plain-dict summary for reports."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.maximum,
        }


@dataclass
class AlertConfusion:
    """Cross-tabulation of detector alerts against oracle verdicts.

    Algorithm 4/5's alert targets the **late** side of a violation: it
    fires at the delivery of a message ``m`` whose entries were already
    covered — i.e. a message that may have been *bypassed* by some causal
    successor delivered earlier.  In oracle terms a bypassed message is
    exactly an :attr:`~repro.sim.oracle.DeliveryVerdict.AMBIGUOUS`
    delivery (an earlier merge, caused by the wrong delivery of a
    successor, marked it as already known).  The paper's soundness claim
    "no alert implies no error" therefore translates to: **every
    ambiguous delivery raises a basic alert** (``recall_late == 1.0``).

    Deliveries the oracle proves to be violations are the *early* side
    (a successor delivered while ``m`` was missing); the paper makes no
    detection claim about those, so their alert counts are reported
    separately.
    """

    late_caught: int = 0
    """Bypassed (ambiguous) deliveries that raised an alert — true positives."""

    late_missed: int = 0
    """Bypassed deliveries with no alert — must stay 0 for Algorithm 4."""

    early_alerted: int = 0
    """Proven-violation (early) deliveries that also raised an alert."""

    early_silent: int = 0
    """Proven-violation deliveries with no alert (expected; no claim made)."""

    false_positives: int = 0
    """Alerts on deliveries the oracle proves correct."""

    true_negatives: int = 0
    """Silent, correct deliveries."""

    def observe(self, alert: bool, verdict: DeliveryVerdict) -> None:
        """Tally one (alert, oracle verdict) pair."""
        if verdict is DeliveryVerdict.AMBIGUOUS:
            if alert:
                self.late_caught += 1
            else:
                self.late_missed += 1
        elif verdict is DeliveryVerdict.VIOLATION:
            if alert:
                self.early_alerted += 1
            else:
                self.early_silent += 1
        else:
            if alert:
                self.false_positives += 1
            else:
                self.true_negatives += 1

    @property
    def total(self) -> int:
        """Deliveries observed across all cells."""
        return (
            self.late_caught
            + self.late_missed
            + self.early_alerted
            + self.early_silent
            + self.false_positives
            + self.true_negatives
        )

    @property
    def alerts(self) -> int:
        """Total alerts fired."""
        return self.late_caught + self.early_alerted + self.false_positives

    @property
    def precision(self) -> float:
        """Fraction of alerts tied to an actual ordering problem (either
        side of a violation).  The paper predicts this is *low* for
        Algorithm 4 ("greatly over-estimates") and higher for Algorithm 5.
        """
        fired = self.alerts
        return (self.late_caught + self.early_alerted) / fired if fired else 0.0

    @property
    def recall_late(self) -> float:
        """Fraction of bypassed deliveries that were alerted.

        Algorithm 4's one-sided guarantee predicts exactly 1.0.
        Algorithm 5 may trade some of it away when its recent list is too
        short or its window too small.
        """
        late = self.late_caught + self.late_missed
        return self.late_caught / late if late else 1.0

    @property
    def alert_rate(self) -> float:
        """Alerts per delivery."""
        total = self.total
        return self.alerts / total if total else 0.0


@dataclass
class MetricSet:
    """Everything a simulation run collects besides the oracle tallies.

    When a :class:`~repro.obs.MetricsRegistry` is attached
    (:meth:`bind_registry`), the same observations additionally feed
    registry instruments under the live runtime's naming conventions —
    ``repro_sim_delivery_latency_ms`` (histogram),
    ``repro_sim_pending_depth`` (histogram of sampled depths), and the
    confusion-cell counters — so a simulated run exports series directly
    comparable with a deployed node's.  Use the ``observe_*`` methods
    rather than poking the summaries so both sinks stay in step.
    """

    latency: StreamingSummary = field(default_factory=StreamingSummary)
    pending: StreamingSummary = field(default_factory=StreamingSummary)
    alerts: AlertConfusion = field(default_factory=AlertConfusion)
    registry: Optional[object] = None

    def bind_registry(self, registry) -> None:
        """Mirror every observation into ``registry`` (``repro.obs``)."""
        from repro.obs.registry import DEFAULT_TIME_BOUNDS_MS

        self.registry = registry
        self._latency_hist = registry.histogram(
            "repro_sim_delivery_latency_ms", bounds=DEFAULT_TIME_BOUNDS_MS
        )
        self._pending_hist = registry.histogram(
            "repro_sim_pending_depth",
            bounds=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
        )
        deliveries = registry.counter("repro_sim_deliveries_total")
        fired = registry.counter("repro_sim_alerts_total")
        late_missed = registry.counter("repro_sim_alerts_late_missed_total")
        false_positives = registry.counter("repro_sim_alert_false_positives_total")
        alert_rate = registry.gauge("repro_sim_alert_rate")

        def collect() -> None:
            deliveries.set(self.alerts.total)
            fired.set(self.alerts.alerts)
            late_missed.set(self.alerts.late_missed)
            false_positives.set(self.alerts.false_positives)
            alert_rate.set(self.alerts.alert_rate)

        registry.register_collector(collect)

    def observe_latency(self, latency_ms: float) -> None:
        """Record one send→deliver latency (simulated milliseconds)."""
        self.latency.observe(latency_ms)
        if self.registry is not None:
            self._latency_hist.observe(latency_ms)

    def observe_pending(self, depth: int) -> None:
        """Record one pending-queue depth sample."""
        self.pending.observe(depth)
        if self.registry is not None:
            self._pending_hist.observe(depth)

    def observe_alert(self, alert: bool, verdict: DeliveryVerdict) -> None:
        """Tally one (alert, oracle verdict) pair."""
        self.alerts.observe(alert, verdict)
