"""Simulation substrate: the event-based evaluation environment of §5.4.

Provides the discrete-event kernel, network delay models, dissemination
strategies (direct broadcast and push gossip), workload generators,
membership/churn models, the ground-truth causality oracle (ε_min/ε_max),
metric collectors, anti-entropy recovery, and the experiment runner.
"""

from repro.sim.dissemination import (
    DirectBroadcast,
    Dissemination,
    DisseminationContext,
    PushGossip,
)
from repro.sim.failures import CrashSchedule, PartitionWindow, PartitionedDissemination
from repro.sim.partialview import PartialViewGossip
from repro.sim.trace import TraceKind, TraceRecorder, TracingApplication
from repro.sim.engine import Simulator
from repro.sim.membership import (
    ChurnAction,
    ChurnEvent,
    ChurnModel,
    MembershipView,
    NoChurn,
    PoissonChurn,
    ScriptedChurn,
)
from repro.sim.metrics import AlertConfusion, MetricSet, StreamingSummary
from repro.sim.network import (
    ConstantDelayModel,
    DelayModel,
    ExponentialDelayModel,
    GaussianDelayModel,
    UniformDelayModel,
)
from repro.sim.node import SimNode
from repro.sim.oracle import (
    CausalityOracle,
    ClassifiedDelivery,
    DeliveryVerdict,
    OracleCounters,
)
from repro.sim.recovery import AntiEntropySession, DeliveryLog, RecoveryStats, diff_logs
from repro.sim.rng import RandomSource
from repro.sim.runner import SimulationConfig, SimulationResult, run_simulation
from repro.sim.workload import (
    BurstyWorkload,
    HotspotWorkload,
    PoissonWorkload,
    ReplayWorkload,
    UniformJitterWorkload,
    Workload,
)

__all__ = [
    "Simulator",
    "RandomSource",
    # network
    "DelayModel",
    "GaussianDelayModel",
    "ConstantDelayModel",
    "UniformDelayModel",
    "ExponentialDelayModel",
    # dissemination
    "Dissemination",
    "DisseminationContext",
    "DirectBroadcast",
    "PushGossip",
    "PartialViewGossip",
    # fault injection
    "PartitionWindow",
    "PartitionedDissemination",
    "CrashSchedule",
    # observability
    "TraceKind",
    "TraceRecorder",
    "TracingApplication",
    # workload
    "Workload",
    "PoissonWorkload",
    "UniformJitterWorkload",
    "BurstyWorkload",
    "HotspotWorkload",
    "ReplayWorkload",
    # membership
    "ChurnAction",
    "ChurnEvent",
    "ChurnModel",
    "MembershipView",
    "NoChurn",
    "PoissonChurn",
    "ScriptedChurn",
    # oracle & metrics
    "CausalityOracle",
    "ClassifiedDelivery",
    "DeliveryVerdict",
    "OracleCounters",
    "AlertConfusion",
    "MetricSet",
    "StreamingSummary",
    # recovery
    "DeliveryLog",
    "diff_logs",
    "AntiEntropySession",
    "RecoveryStats",
    # runner
    "SimNode",
    "SimulationConfig",
    "SimulationResult",
    "run_simulation",
]
