"""Network delay models (Section 5.4 methodology).

The paper's model has two stages:

1. each *message* draws one base propagation time
   ``d ~ N(mu, sigma^2)`` (headline values: N(100, 20) ms);
2. each *receiver* of that message draws its own arrival delay from
   ``N(d, sigma_m^2)`` (headline skew: 20 ms) — so receptions of the same
   broadcast cluster around the message's base delay.

:class:`GaussianDelayModel` implements exactly that.  Alternative models
(constant, uniform, exponential/heavy-tail) are provided to probe the
mechanism's sensitivity to the delay distribution — the error analysis
only depends on the *concurrency* ``X``, so the shape of the distribution
is an interesting ablation axis the paper leaves implicit.

All delays are milliseconds and strictly positive (Gaussian draws are
truncated just above zero by resampling).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.errors import ConfigurationError
from repro.sim.rng import RandomSource

__all__ = [
    "DelayModel",
    "GaussianDelayModel",
    "ConstantDelayModel",
    "UniformDelayModel",
    "ExponentialDelayModel",
]

_MIN_DELAY_MS = 1e-6


class DelayModel(ABC):
    """Two-stage delay sampler: per-message base, per-receiver arrival."""

    @abstractmethod
    def sample_base(self, rng: RandomSource) -> float:
        """Draw the message's base propagation time ``d`` (ms)."""

    @abstractmethod
    def sample_arrival(self, rng: RandomSource, base: float) -> float:
        """Draw one receiver's delay given the message's base ``d`` (ms)."""

    @abstractmethod
    def mean_delay(self) -> float:
        """Expected one-way delay (ms), used to estimate the concurrency X
        and to size detector windows."""


class GaussianDelayModel(DelayModel):
    """The paper's model: ``d ~ N(mean, std²)``, arrivals ``~ N(d, skew_std²)``.

    Defaults are the paper's headline parameters (100, 20, 20).
    """

    def __init__(self, mean: float = 100.0, std: float = 20.0, skew_std: float = 20.0) -> None:
        if mean <= 0:
            raise ConfigurationError(f"mean delay must be > 0, got {mean}")
        if std < 0 or skew_std < 0:
            raise ConfigurationError("standard deviations must be >= 0")
        self._mean = mean
        self._std = std
        self._skew_std = skew_std

    def sample_base(self, rng: RandomSource) -> float:
        return rng.gauss_positive(self._mean, self._std, floor=_MIN_DELAY_MS)

    def sample_arrival(self, rng: RandomSource, base: float) -> float:
        if self._skew_std == 0:
            return base
        return rng.gauss_positive(base, self._skew_std, floor=_MIN_DELAY_MS)

    def mean_delay(self) -> float:
        return self._mean


class ConstantDelayModel(DelayModel):
    """Every reception takes exactly ``delay`` ms.

    With a constant delay there is no network reordering at all
    (``P_nc = 0``) so the probabilistic mechanism makes no errors —
    a useful sanity configuration for tests.
    """

    def __init__(self, delay: float = 100.0) -> None:
        if delay <= 0:
            raise ConfigurationError(f"delay must be > 0, got {delay}")
        self._delay = delay

    def sample_base(self, rng: RandomSource) -> float:
        return self._delay

    def sample_arrival(self, rng: RandomSource, base: float) -> float:
        return base

    def mean_delay(self) -> float:
        return self._delay


class UniformDelayModel(DelayModel):
    """Base delay uniform in ``[low, high]``; optional uniform receiver skew
    of half-width ``skew`` around the base."""

    def __init__(self, low: float, high: float, skew: float = 0.0) -> None:
        if not 0 < low <= high:
            raise ConfigurationError(f"need 0 < low <= high, got [{low}, {high}]")
        if skew < 0:
            raise ConfigurationError(f"skew must be >= 0, got {skew}")
        self._low = low
        self._high = high
        self._skew = skew

    def sample_base(self, rng: RandomSource) -> float:
        return rng.uniform(self._low, self._high)

    def sample_arrival(self, rng: RandomSource, base: float) -> float:
        if self._skew == 0:
            return base
        return max(_MIN_DELAY_MS, rng.uniform(base - self._skew, base + self._skew))

    def mean_delay(self) -> float:
        return 0.5 * (self._low + self._high)


class ExponentialDelayModel(DelayModel):
    """Heavy-tailed delays: ``d = offset + Exp(mean_excess)``.

    Models occasional slow paths (queueing); stresses the mechanism with a
    higher reorder probability than the Gaussian model at equal mean.
    """

    def __init__(
        self, mean_excess: float = 50.0, offset: float = 50.0, skew_std: float = 0.0
    ) -> None:
        if mean_excess <= 0:
            raise ConfigurationError(f"mean_excess must be > 0, got {mean_excess}")
        if offset < 0:
            raise ConfigurationError(f"offset must be >= 0, got {offset}")
        if skew_std < 0:
            raise ConfigurationError(f"skew_std must be >= 0, got {skew_std}")
        self._mean_excess = mean_excess
        self._offset = offset
        self._skew_std = skew_std

    def sample_base(self, rng: RandomSource) -> float:
        return self._offset + rng.exponential(self._mean_excess)

    def sample_arrival(self, rng: RandomSource, base: float) -> float:
        if self._skew_std == 0:
            return base
        return rng.gauss_positive(base, self._skew_std, floor=_MIN_DELAY_MS)

    def mean_delay(self) -> float:
        return self._offset + self._mean_excess
