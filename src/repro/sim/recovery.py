"""Anti-entropy recovery (the out-of-band procedure assumed in Section 4.2).

The paper's mechanism tolerates rare causal-order violations on the
assumption that "a recovery procedure does exist (e.g., anti-entropy)";
the alert of Algorithms 4/5 tells the application *when* paying for that
procedure is worthwhile.  This module supplies the procedure for our
examples and tests:

* :class:`DeliveryLog` — a per-node record of delivered messages, bounded
  or unbounded;
* :func:`diff_logs` — the set-reconciliation step: what each side misses;
* :class:`AntiEntropySession` — a two-party exchange that replays the
  missing messages into each side's application callback, in sequence
  order per sender (the strongest order reconstructible without extra
  metadata).

The session is transport-agnostic: it works directly on in-memory logs,
which is what both the simulator and the examples need.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Set, Tuple

from repro.core.errors import ConfigurationError
from repro.core.protocol import Message

__all__ = ["DeliveryLog", "diff_logs", "AntiEntropySession", "RecoveryStats"]

ProcessId = Hashable
MessageId = Tuple[ProcessId, int]


class DeliveryLog:
    """Append-only record of the messages one node has delivered.

    Keeps insertion order (delivery order) and supports O(1) membership
    tests.  With ``max_entries`` set the log is a sliding window — the
    realistic deployment mode, where anti-entropy only repairs recent
    divergence and older state is reconciled by snapshot transfer.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries <= 0:
            raise ConfigurationError(f"max_entries must be positive, got {max_entries}")
        self._entries: "OrderedDict[MessageId, Message]" = OrderedDict()
        self._max_entries = max_entries
        self.evicted = 0

    def record(self, message: Message) -> None:
        """Append one delivered message (duplicates are ignored)."""
        message_id = message.message_id
        if message_id in self._entries:
            return
        self._entries[message_id] = message
        if self._max_entries is not None:
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self.evicted += 1

    def ids(self) -> Set[MessageId]:
        """The set of logged message ids."""
        return set(self._entries)

    def get(self, message_id: MessageId) -> Optional[Message]:
        """The logged message for ``message_id``, or None."""
        return self._entries.get(message_id)

    def messages(self) -> List[Message]:
        """All logged messages in delivery order."""
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, message_id: MessageId) -> bool:
        return message_id in self._entries


def diff_logs(first: DeliveryLog, second: DeliveryLog) -> Tuple[List[Message], List[Message]]:
    """Set reconciliation between two delivery logs.

    Returns ``(missing_in_first, missing_in_second)``: the messages each
    side has that the other lacks, in the holder's delivery order.
    """
    first_ids = first.ids()
    second_ids = second.ids()
    missing_in_first = [m for m in second.messages() if m.message_id not in first_ids]
    missing_in_second = [m for m in first.messages() if m.message_id not in second_ids]
    return missing_in_first, missing_in_second


@dataclass
class RecoveryStats:
    """Outcome of one anti-entropy exchange."""

    sessions: int = 0
    messages_repaired: int = 0

    def add(self, repaired: int) -> None:
        """Record one completed session and its repair count."""
        self.sessions += 1
        self.messages_repaired += repaired


class AntiEntropySession:
    """Two-party anti-entropy: exchange missing messages and replay them.

    Replay order: missing messages are sorted by ``(sender, seq)`` and
    handed to the receiving side's ``apply`` callback.  Per-sender
    sequence order is exactly the FIFO order the causal protocol would
    have enforced; cross-sender order cannot be reconstructed from ids
    alone, which is fine for the intended consumers (CRDTs, whose
    operations from different senders commute).
    """

    def __init__(
        self,
        apply_first: Callable[[Message], None],
        apply_second: Callable[[Message], None],
    ) -> None:
        self._apply_first = apply_first
        self._apply_second = apply_second
        self.stats = RecoveryStats()

    def reconcile(self, first: DeliveryLog, second: DeliveryLog) -> int:
        """Run one exchange; returns how many messages were repaired."""
        missing_in_first, missing_in_second = diff_logs(first, second)
        for message in sorted(missing_in_first, key=_replay_key):
            self._apply_first(message)
            first.record(message)
        for message in sorted(missing_in_second, key=_replay_key):
            self._apply_second(message)
            second.record(message)
        repaired = len(missing_in_first) + len(missing_in_second)
        self.stats.add(repaired)
        return repaired


def _replay_key(message: Message) -> Tuple[str, int]:
    return (repr(message.sender), message.seq)
