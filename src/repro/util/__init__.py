"""Small shared utilities with no heavyweight dependencies."""

from repro.util.rng import RandomSource

__all__ = ["RandomSource"]
