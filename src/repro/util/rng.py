"""Deterministic random streams for reproducible simulations.

Every stochastic component of the simulator (workload generators, network
delay models, key assignment, churn) receives its own :class:`RandomSource`
derived from a single experiment seed.  Substreams are spawned by name, so
adding a new consumer of randomness never perturbs the draws seen by
existing ones — a property the regression tests rely on.
"""

from __future__ import annotations

from typing import Optional, Sequence, TypeVar

import numpy as np

from repro.core.errors import ConfigurationError

__all__ = ["RandomSource"]

T = TypeVar("T")


class RandomSource:
    """A seeded random stream with the distributions the simulator needs.

    Wraps :class:`numpy.random.Generator` (PCG64) and exposes a small,
    stable API.  Use :meth:`spawn` to derive independent named substreams.
    """

    def __init__(self, seed: int = 0, _generator: Optional[np.random.Generator] = None) -> None:
        if _generator is not None:
            self._generator = _generator
        else:
            self._generator = np.random.Generator(np.random.PCG64(seed))
        self._seed = seed

    @property
    def seed(self) -> int:
        """The seed this source (or its root ancestor) was built from."""
        return self._seed

    def spawn(self, name: str) -> "RandomSource":
        """Derive an independent substream keyed by ``name``.

        The child stream depends only on the parent's seed and ``name``,
        never on how many draws the parent has made.
        """
        child_seed = np.random.SeedSequence(
            entropy=self._seed, spawn_key=tuple(name.encode("utf-8"))
        )
        child = RandomSource.__new__(RandomSource)
        child._generator = np.random.Generator(np.random.PCG64(child_seed))
        child._seed = self._seed
        return child

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``.

        Uses Python-level arbitrary-precision sampling when the range
        exceeds 64 bits (e.g. ``set_id`` spaces with huge ``C(R, K)``).
        """
        if high <= low:
            raise ConfigurationError(f"empty integer range [{low}, {high})")
        span = high - low
        if span <= (1 << 63):
            return int(self._generator.integers(low, high))
        # Arbitrary precision: rejection sampling over whole 64-bit words.
        bits = span.bit_length()
        words = (bits + 63) // 64
        while True:
            value = 0
            for _ in range(words):
                value = (value << 64) | int(self._generator.integers(0, 1 << 63) << 1) | int(
                    self._generator.integers(0, 2)
                )
            value &= (1 << bits) - 1
            if value < span:
                return low + value

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Uniform float in ``[low, high)``."""
        return float(self._generator.uniform(low, high))

    def gauss(self, mean: float, std: float) -> float:
        """Normal draw ``N(mean, std^2)``."""
        return float(self._generator.normal(mean, std))

    def gauss_positive(self, mean: float, std: float, floor: float = 0.0) -> float:
        """Normal draw truncated below at ``floor`` by resampling.

        Network delays must be positive; the paper's ``N(100, 20)`` model
        makes negative draws vanishingly rare, but the simulator must not
        produce them at all.
        """
        for _ in range(64):
            value = self.gauss(mean, std)
            if value > floor:
                return value
        # Distribution mass is essentially entirely below the floor;
        # fall back to the floor plus a hair to preserve event ordering.
        return floor + abs(std) * 1e-6 + 1e-9

    def exponential(self, mean: float) -> float:
        """Exponential draw with the given mean (Poisson inter-arrivals)."""
        if mean <= 0:
            raise ConfigurationError(f"exponential mean must be > 0, got {mean}")
        return float(self._generator.exponential(mean))

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one element of a non-empty sequence."""
        if not items:
            raise ConfigurationError("cannot choose from an empty sequence")
        return items[self.integer(0, len(items))]

    def sample(self, items: Sequence[T], count: int) -> list:
        """Pick ``count`` distinct elements, uniformly without replacement."""
        if count > len(items):
            raise ConfigurationError(
                f"cannot sample {count} items from a sequence of {len(items)}"
            )
        indices = self._generator.choice(len(items), size=count, replace=False)
        return [items[int(i)] for i in indices]

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._generator.shuffle(items)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return float(self._generator.random())
