"""Observed-Remove Set: causally sensitive add/remove semantics.

The OR-Set (Shapiro et al., the paper's ref [13]) gives add-wins
semantics: a ``remove(e)`` deletes exactly the add-tags of ``e`` the
remover had *observed*.  Its correctness argument assumes causal
delivery: a remove must arrive after the adds it observed.

Under the probabilistic broadcast a remove can overtake one of its
observed adds.  This implementation detects that as an **anomaly** and
applies the standard repair: the overtaken tags are remembered as
*pre-removed tombstones*, so when the late add finally arrives it is
cancelled instead of resurrecting the element.  With that fallback the
type still converges; the anomaly counter measures how often the causal
assumption was violated — the application-level metric the paper's error
rate translates into.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, Set, Tuple

from repro.core.errors import ConfigurationError
from repro.crdt.base import OpBasedCrdt

__all__ = ["ORSet"]

Tag = Tuple[Hashable, int]
AddOp = Tuple[str, Any, Tag]
RemoveOp = Tuple[str, Any, FrozenSet[Tag]]


class ORSet(OpBasedCrdt):
    """Observed-remove set with pre-remove tombstone repair."""

    def __init__(self, replica_id: Hashable) -> None:
        super().__init__(replica_id)
        self._live_tags: Dict[Any, Set[Tag]] = {}
        self._pre_removed: Set[Tag] = set()
        # Every add-tag ever applied (including ones later removed): a
        # remove naming a tag absent from this set has overtaken its add —
        # a genuine causal anomaly.  A tag that is merely no longer *live*
        # was removed by a concurrent remove, which is legitimate.
        self._seen_tags: Set[Tag] = set()

    # ------------------------------------------------------------------
    # local mutators (apply locally, return the op to broadcast)
    # ------------------------------------------------------------------

    def add(self, element: Any) -> AddOp:
        """Add ``element`` with a fresh unique tag."""
        tag = self.fresh_tag()
        self._apply_add(element, tag)
        return ("add", element, tag)

    def remove(self, element: Any) -> RemoveOp:
        """Remove the currently observed tags of ``element``.

        Removing an absent element is legal and yields an empty tag set
        (a no-op for every replica).
        """
        observed = frozenset(self._live_tags.get(element, set()))
        self._apply_remove(element, observed)
        return ("remove", element, observed)

    # ------------------------------------------------------------------
    # remote application
    # ------------------------------------------------------------------

    def apply_remote(self, operation: Tuple) -> None:
        kind = operation[0]
        if kind == "add":
            _, element, tag = operation
            self._apply_add(element, tag)
        elif kind == "remove":
            _, element, tags = operation
            missing = set(tags) - self._seen_tags
            if missing:
                # The remove observed adds we have never seen: a causal
                # violation surfaced at the application layer.
                self.anomalies += 1
                self._pre_removed.update(missing)
                self._seen_tags.update(missing)
            self._apply_remove(element, tags)
        else:
            raise ConfigurationError(f"unknown OR-Set operation {kind!r}")

    def _apply_add(self, element: Any, tag: Tag) -> None:
        self._seen_tags.add(tag)
        if tag in self._pre_removed:
            # The remove that observed this add arrived first; honour it.
            self._pre_removed.discard(tag)
            return
        self._live_tags.setdefault(element, set()).add(tag)

    def _apply_remove(self, element: Any, tags: FrozenSet[Tag]) -> None:
        live = self._live_tags.get(element)
        if live is None:
            return
        live.difference_update(tags)
        if not live:
            del self._live_tags[element]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __contains__(self, element: Any) -> bool:
        return element in self._live_tags

    def value(self) -> Set[Any]:
        """The visible set of elements."""
        return set(self._live_tags)

    def state_signature(self) -> Tuple:
        elements = tuple(
            (repr(element), tuple(sorted(map(repr, tags))))
            for element, tags in sorted(
                self._live_tags.items(), key=lambda item: repr(item[0])
            )
        )
        return (elements, tuple(sorted(map(repr, self._pre_removed))))
