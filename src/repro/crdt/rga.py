"""RGA — a replicated growable array (collaborative text editing).

The Replicated Growable Array is the classic sequence CRDT behind
collaborative editors (the paper's introduction names exactly this
application class, and its ref [10] is P2P collaborative editing).  Every
element has a unique id; ``insert_after(parent, value)`` places a new
element after an existing one, siblings ordered by descending id
(Lamport-timestamp pairs), and ``delete`` tombstones an element.

Causal delivery is RGA's safety net: an insert can only be integrated if
its parent is already present, and a delete only if its target is.  When
the probabilistic broadcast delivers out of causal order, this
implementation:

* counts an **anomaly**,
* parks orphan inserts in a waiting room keyed by the missing parent and
  integrates them the moment the parent arrives (so convergence is
  preserved),
* remembers early deletes as pre-tombstones applied when the target
  arrives.

The number of anomalies and the *time elements spend invisible* are the
user-facing manifestation of the paper's error rate.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.crdt.base import OpBasedCrdt

__all__ = ["RGA", "ROOT"]

ElementId = Tuple[int, Hashable]
InsertOp = Tuple[str, Optional[ElementId], ElementId, Any]
DeleteOp = Tuple[str, ElementId]

ROOT: Optional[ElementId] = None
"""The virtual parent of the first element of the sequence."""


class _Node:
    __slots__ = ("element_id", "value", "deleted", "children")

    def __init__(self, element_id: Optional[ElementId], value: Any) -> None:
        self.element_id = element_id
        self.value = value
        self.deleted = False
        self.children: List[ElementId] = []  # sorted descending by id


class RGA(OpBasedCrdt):
    """Sequence CRDT with orphan buffering for out-of-causal-order ops."""

    def __init__(self, replica_id: Hashable) -> None:
        super().__init__(replica_id)
        self._nodes: Dict[Optional[ElementId], _Node] = {ROOT: _Node(ROOT, None)}
        self._counter = 0
        self._orphans: Dict[ElementId, List[InsertOp]] = {}
        self._pre_tombstones: set = set()

    # ------------------------------------------------------------------
    # local mutators
    # ------------------------------------------------------------------

    def insert_after(self, parent: Optional[ElementId], value: Any) -> InsertOp:
        """Insert ``value`` after ``parent`` (``ROOT`` for the front).

        Returns the operation to broadcast.  Raises
        :class:`ConfigurationError` when the parent is unknown locally —
        local callers must reference elements they can see.
        """
        if parent not in self._nodes:
            raise ConfigurationError(f"unknown parent element {parent!r}")
        self._counter += 1
        element_id: ElementId = (self._counter, self.replica_id)
        self._integrate_insert(parent, element_id, value)
        return ("insert", parent, element_id, value)

    def delete(self, element_id: ElementId) -> DeleteOp:
        """Tombstone a visible element; returns the operation to broadcast."""
        node = self._nodes.get(element_id)
        if node is None or node.deleted:
            raise ConfigurationError(f"element {element_id!r} is not visible")
        node.deleted = True
        return ("delete", element_id)

    # ------------------------------------------------------------------
    # remote application
    # ------------------------------------------------------------------

    def apply_remote(self, operation: Tuple) -> None:
        kind = operation[0]
        if kind == "insert":
            _, parent, element_id, value = operation
            self._counter = max(self._counter, element_id[0])
            if element_id in self._nodes:
                return  # duplicate (defensive; protocol already dedups)
            if parent not in self._nodes:
                self.anomalies += 1
                self._orphans.setdefault(parent, []).append(operation)
                return
            self._integrate_insert(parent, element_id, value)
        elif kind == "delete":
            _, element_id = operation
            node = self._nodes.get(element_id)
            if node is None:
                self.anomalies += 1
                self._pre_tombstones.add(element_id)
                return
            node.deleted = True
        else:
            raise ConfigurationError(f"unknown RGA operation {kind!r}")

    def _integrate_insert(
        self, parent: Optional[ElementId], element_id: ElementId, value: Any
    ) -> None:
        node = _Node(element_id, value)
        if element_id in self._pre_tombstones:
            self._pre_tombstones.discard(element_id)
            node.deleted = True
        self._nodes[element_id] = node
        siblings = self._nodes[parent].children
        # Descending id order: later (higher-timestamp) inserts win the
        # position closest to the parent, the RGA tie-break.
        position = 0
        while position < len(siblings) and siblings[position] > element_id:
            position += 1
        siblings.insert(position, element_id)
        # Any orphans that were waiting for this element can now join.
        for orphan in self._orphans.pop(element_id, []):
            _, orphan_parent, orphan_id, orphan_value = orphan
            if orphan_id not in self._nodes:
                self._integrate_insert(orphan_parent, orphan_id, orphan_value)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def orphan_count(self) -> int:
        """Inserts currently parked because their parent has not arrived."""
        return sum(len(ops) for ops in self._orphans.values())

    def value(self) -> List[Any]:
        """The visible sequence, in document order."""
        result: List[Any] = []
        stack = list(reversed(self._nodes[ROOT].children))
        while stack:
            element_id = stack.pop()
            node = self._nodes[element_id]
            if not node.deleted:
                result.append(node.value)
            stack.extend(reversed(node.children))
        return result

    def visible_ids(self) -> List[ElementId]:
        """Ids of the visible elements, in document order."""
        result: List[ElementId] = []
        stack = list(reversed(self._nodes[ROOT].children))
        while stack:
            element_id = stack.pop()
            node = self._nodes[element_id]
            if not node.deleted:
                result.append(element_id)
            stack.extend(reversed(node.children))
        return result

    def as_text(self) -> str:
        """Concatenate a character sequence (editor-style usage)."""
        return "".join(str(v) for v in self.value())

    def state_signature(self) -> Tuple:
        ordered = tuple(
            (element_id, self._nodes[element_id].value)
            for element_id in self.visible_ids()
        )
        waiting = tuple(sorted((repr(p) for p in self._orphans), key=str))
        return (ordered, waiting, tuple(sorted(map(repr, self._pre_tombstones))))
