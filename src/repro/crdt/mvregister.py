"""Multi-Value Register: keep all concurrent writes, prune dominated ones.

Where the LWW register arbitrates concurrent writes with a timestamp, the
MV-register exposes them: ``values()`` returns every write not causally
dominated by another (the Dynamo shopping-cart semantics).  Domination is
tracked with per-write *version vectors* (one entry per writing replica),
so this type is both a consumer of causal delivery **and** a live,
self-contained illustration of why the paper's mechanism exists: every
write carries a vector that grows with the number of writers, exactly
the overhead the (R, K) timestamps avoid at the transport layer.

Causal sensitivity: a write ``w2`` that causally follows ``w1`` carries a
version vector dominating ``w1``'s, so applying them in either order
converges (the dominated write is pruned on arrival of the dominating
one).  What a causal-order violation changes is *visibility*: a replica
that receives ``w2`` before ``w1`` will briefly show ``w2`` and then, on
``w1``'s late arrival, correctly prune it — no anomaly counter needed,
but the window where siblings flicker is measurable and tests cover it.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Tuple

from repro.core.errors import ConfigurationError
from repro.crdt.base import OpBasedCrdt

__all__ = ["MVRegister"]

VersionVector = Tuple[Tuple[str, int], ...]
WriteOp = Tuple[str, Any, VersionVector, str]


def _dominates(left: Dict[str, int], right: Dict[str, int]) -> bool:
    """True when ``left`` >= ``right`` everywhere and > somewhere."""
    strictly_greater = False
    for key, value in right.items():
        if left.get(key, 0) < value:
            return False
    for key, value in left.items():
        if value > right.get(key, 0):
            strictly_greater = True
    return strictly_greater


class MVRegister(OpBasedCrdt):
    """Register exposing all causally concurrent values."""

    def __init__(self, replica_id: Hashable) -> None:
        super().__init__(replica_id)
        self._replica_key = repr(replica_id)
        # Live (not-yet-dominated) writes: version vector -> value.
        self._siblings: List[Tuple[Dict[str, int], Any]] = []
        # This replica's knowledge: max version vector observed.
        self._observed: Dict[str, int] = {}

    def write(self, value: Any) -> WriteOp:
        """Overwrite everything this replica has observed."""
        self._observed[self._replica_key] = self._observed.get(self._replica_key, 0) + 1
        version = dict(self._observed)
        self._integrate(version, value)
        frozen: VersionVector = tuple(sorted(version.items()))
        return ("write", value, frozen, self._replica_key)

    def apply_remote(self, operation: WriteOp) -> None:
        kind = operation[0]
        if kind != "write":
            raise ConfigurationError(f"unknown MV-register operation {kind!r}")
        _, value, frozen, _ = operation
        version = dict(frozen)
        for key, counter in version.items():
            if counter > self._observed.get(key, 0):
                self._observed[key] = counter
        self._integrate(version, value)

    def _integrate(self, version: Dict[str, int], value: Any) -> None:
        # Drop live siblings dominated by the new write; drop the new
        # write if a live sibling dominates it (it arrived late).
        survivors: List[Tuple[Dict[str, int], Any]] = []
        dominated = False
        for existing_version, existing_value in self._siblings:
            if _dominates(version, existing_version):
                continue  # the newcomer supersedes it
            if _dominates(existing_version, version) or existing_version == version:
                dominated = True
            survivors.append((existing_version, existing_value))
        if not dominated:
            survivors.append((version, value))
        self._siblings = survivors

    def values(self) -> List[Any]:
        """All causally concurrent values (deterministic order)."""
        return [value for _, value in sorted(
            self._siblings, key=lambda pair: sorted(pair[0].items())
        )]

    def value(self) -> Any:
        """Alias returning the sibling list (OpBasedCrdt interface)."""
        return self.values()

    @property
    def sibling_count(self) -> int:
        return len(self._siblings)

    def state_signature(self) -> Tuple:
        return tuple(
            (tuple(sorted(version.items())), repr(value))
            for version, value in sorted(
                self._siblings, key=lambda pair: sorted(pair[0].items())
            )
        )
