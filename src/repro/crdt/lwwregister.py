"""Last-Writer-Wins register.

A single-value register where the write carrying the highest
``(logical timestamp, replica id)`` pair wins.  Like the PN-counter it
converges under any delivery order, but unlike the counter it is
*semantically* sensitive to ordering: a causal violation can make a stale
value visible for a while (the register shows ``w1`` after the user
already saw ``w2`` overwrite it, because ``w2`` was delivered first and
``w1`` arrived late and lost).  The register therefore counts a
``stale_applications`` statistic: writes that arrived after a causally
later write had already been applied — the visible-glitch counterpart of
the paper's error rate for state that needs no structural repair.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple

from repro.crdt.base import OpBasedCrdt

__all__ = ["LWWRegister"]

WriteStamp = Tuple[int, str]
WriteOp = Tuple[str, Any, WriteStamp]


class LWWRegister(OpBasedCrdt):
    """Converging register with last-writer-wins conflict resolution."""

    def __init__(self, replica_id: Hashable, initial: Any = None) -> None:
        super().__init__(replica_id)
        self._value = initial
        self._stamp: Optional[WriteStamp] = None
        self._clock = 0
        self.stale_applications = 0

    def write(self, value: Any) -> WriteOp:
        """Write locally; returns the operation to broadcast."""
        self._clock += 1
        stamp: WriteStamp = (self._clock, repr(self.replica_id))
        self._apply(value, stamp)
        return ("write", value, stamp)

    def apply_remote(self, operation: WriteOp) -> None:
        _, value, stamp = operation
        self._clock = max(self._clock, stamp[0])
        self._apply(value, stamp)

    def _apply(self, value: Any, stamp: WriteStamp) -> None:
        if self._stamp is None or stamp > self._stamp:
            self._value = value
            self._stamp = stamp
        else:
            # A write older than the current one arrived late: under
            # causal delivery we would have seen it before its overwriter.
            self.stale_applications += 1

    def value(self) -> Any:
        return self._value

    @property
    def stamp(self) -> Optional[WriteStamp]:
        """The winning write's ``(clock, replica)`` stamp."""
        return self._stamp

    def state_signature(self) -> Tuple:
        return (repr(self._value), self._stamp)
