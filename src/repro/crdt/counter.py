"""PN-Counter: an order-insensitive baseline CRDT.

Increments and decrements commute, so a PN-counter converges under *any*
delivery order — causal or not.  It is included as the control in the
collaborative-application experiments: running it over the probabilistic
broadcast shows zero anomalies at any violation rate, isolating the kinds
of state for which the paper's relaxation is entirely free.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

from repro.core.errors import ConfigurationError
from repro.crdt.base import OpBasedCrdt

__all__ = ["PNCounter"]

ReplicaId = Hashable
CounterOp = Tuple[str, ReplicaId, int]


class PNCounter(OpBasedCrdt):
    """Increment/decrement counter as two grow-only per-replica maps."""

    def __init__(self, replica_id: ReplicaId) -> None:
        super().__init__(replica_id)
        self._increments: Dict[ReplicaId, int] = {}
        self._decrements: Dict[ReplicaId, int] = {}

    def increment(self, amount: int = 1) -> CounterOp:
        """Add ``amount`` locally; returns the operation to broadcast."""
        if amount <= 0:
            raise ConfigurationError(f"amount must be positive, got {amount}")
        self._increments[self.replica_id] = (
            self._increments.get(self.replica_id, 0) + amount
        )
        return ("incr", self.replica_id, amount)

    def decrement(self, amount: int = 1) -> CounterOp:
        """Subtract ``amount`` locally; returns the operation to broadcast."""
        if amount <= 0:
            raise ConfigurationError(f"amount must be positive, got {amount}")
        self._decrements[self.replica_id] = (
            self._decrements.get(self.replica_id, 0) + amount
        )
        return ("decr", self.replica_id, amount)

    def apply_remote(self, operation: CounterOp) -> None:
        kind, origin, amount = operation
        if kind == "incr":
            self._increments[origin] = self._increments.get(origin, 0) + amount
        elif kind == "decr":
            self._decrements[origin] = self._decrements.get(origin, 0) + amount
        else:
            raise ConfigurationError(f"unknown counter operation {kind!r}")

    def value(self) -> int:
        return sum(self._increments.values()) - sum(self._decrements.values())

    def state_signature(self) -> Tuple[Tuple[ReplicaId, int, int], ...]:
        keys = sorted(
            set(self._increments) | set(self._decrements), key=repr
        )
        return tuple(
            (key, self._increments.get(key, 0), self._decrements.get(key, 0))
            for key in keys
        )
