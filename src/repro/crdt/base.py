"""Operation-based CRDT substrate.

The paper motivates causal broadcast with collaborative applications and
replicated data types (its refs [10, 13, 14]).  Operation-based CRDTs are
the canonical consumer: every replica broadcasts its operations, and
**causal delivery is exactly the precondition op-based CRDTs assume**
("causal delivery of updates" in Shapiro et al.'s framework).  When the
probabilistic mechanism occasionally delivers out of causal order, a CRDT
sees an operation whose premise is missing — an *anomaly*.

The types here make that observable:

* :class:`OpBasedCrdt` — interface: local updates return operations;
  remote operations are applied on delivery; every implementation counts
  the anomalies it detects and applies a documented fallback, so replicas
  still converge after an anti-entropy repair.
* :class:`CrdtBinding` — glue that runs a CRDT over a
  :class:`~repro.core.protocol.CausalBroadcastEndpoint`: local mutators
  broadcast, deliveries apply, and a :class:`~repro.sim.recovery.DeliveryLog`
  feeds anti-entropy.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Hashable, Optional

from repro.core.protocol import CausalBroadcastEndpoint, DeliveryRecord, Message
from repro.sim.recovery import DeliveryLog

__all__ = ["OpBasedCrdt", "CrdtBinding"]

ReplicaId = Hashable


class OpBasedCrdt(ABC):
    """An operation-based replicated data type.

    Concrete types expose domain mutators (``add``, ``insert``, …) that
    update local state and return the operation payload to broadcast;
    :meth:`apply_remote` integrates a peer's operation.

    Attributes:
        replica_id: this replica's identity (used for unique tags).
        anomalies: count of operations whose causal premise was missing
            when they were applied — the observable cost of a causal-order
            violation.  Implementations document their fallback behaviour;
            all fallbacks preserve convergence once the missing operations
            eventually arrive (or are repaired by anti-entropy).
    """

    def __init__(self, replica_id: ReplicaId) -> None:
        self.replica_id = replica_id
        self.anomalies = 0
        self._tag_counter = 0

    def fresh_tag(self) -> tuple:
        """A globally unique operation tag ``(replica_id, counter)``."""
        self._tag_counter += 1
        return (self.replica_id, self._tag_counter)

    @abstractmethod
    def apply_remote(self, operation: Any) -> None:
        """Integrate one operation produced by a peer replica.

        Must be idempotent per unique operation tag where the type's
        semantics require it (the protocol layer already deduplicates
        whole messages, so per-message idempotence is not required).
        """

    @abstractmethod
    def value(self) -> Any:
        """The current queryable state (a plain Python value)."""

    def state_signature(self) -> Any:
        """A hashable digest of the state, used by convergence checks.

        Defaults to ``repr(self.value())``; override when ``value()`` is
        not cheaply comparable.
        """
        return repr(self.value())


class CrdtBinding:
    """Runs an op-based CRDT on top of a causal broadcast endpoint.

    Wires three layers together:

    * mutators call :meth:`broadcast_update` with the operation payload;
    * the endpoint's deliveries (local and remote) are routed into
      :meth:`OpBasedCrdt.apply_remote`;
    * every delivered message is recorded in a :class:`DeliveryLog` so an
      anti-entropy session can repair divergence after a violation.

    Note the endpoint must have been constructed with
    ``deliver_callback=binding.on_delivery`` — use :meth:`attach` to build
    the coupling in the right order::

        binding = CrdtBinding.attach(endpoint_factory, crdt)
    """

    def __init__(
        self,
        crdt: OpBasedCrdt,
        log_size: Optional[int] = None,
    ) -> None:
        self.crdt = crdt
        self.endpoint: Optional[CausalBroadcastEndpoint] = None
        self.log = DeliveryLog(max_entries=log_size)
        self.alerts = 0

    @classmethod
    def attach(
        cls,
        endpoint_factory: Callable[[Callable[[DeliveryRecord], None]], CausalBroadcastEndpoint],
        crdt: OpBasedCrdt,
        log_size: Optional[int] = None,
    ) -> "CrdtBinding":
        """Create the binding and its endpoint together.

        ``endpoint_factory`` receives the delivery callback and returns
        the endpoint (whose ``deliver_callback`` must be that callback).
        """
        binding = cls(crdt, log_size=log_size)
        binding.endpoint = endpoint_factory(binding.on_delivery)
        return binding

    def broadcast_update(self, operation: Any) -> Message:
        """Broadcast one locally generated operation.

        The local application of the operation is the mutator's job (the
        op-based CRDT pattern: update locally, then broadcast); the
        endpoint's local self-delivery is recorded in the log only.
        """
        if self.endpoint is None:
            raise RuntimeError("binding has no endpoint; use CrdtBinding.attach()")
        return self.endpoint.broadcast(payload=operation)

    def on_delivery(self, record: DeliveryRecord) -> None:
        """Endpoint delivery callback: apply remote operations."""
        self.log.record(record.message)
        if record.alert:
            self.alerts += 1
        if record.local:
            return
        self.crdt.apply_remote(record.message.payload)

    def repair_from(self, message: Message) -> None:
        """Anti-entropy hook: apply a message obtained out of band."""
        if message.message_id not in self.log:
            self.log.record(message)
            self.crdt.apply_remote(message.payload)
