"""Replicated data types: the motivating application substrate.

Operation-based CRDTs consume the causal delivery the paper's mechanism
provides probabilistically.  Each type counts the anomalies it observes
when delivery violates causal order, turning the paper's abstract error
rate into application-visible numbers.
"""

from repro.crdt.base import CrdtBinding, OpBasedCrdt
from repro.crdt.counter import PNCounter
from repro.crdt.lwwregister import LWWRegister
from repro.crdt.mvregister import MVRegister
from repro.crdt.orset import ORSet
from repro.crdt.rga import RGA, ROOT

__all__ = [
    "OpBasedCrdt",
    "CrdtBinding",
    "PNCounter",
    "ORSet",
    "RGA",
    "ROOT",
    "LWWRegister",
    "MVRegister",
]
