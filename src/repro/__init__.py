"""repro — Probabilistic Causal Message Ordering (Mostefaoui & Weiss, PaCT 2017).

A production-quality reproduction of the paper's probabilistic causal
broadcast mechanism, with:

* :mod:`repro.core` — the deployable library: the (n, r, k) clock family,
  key-space assignment (Algorithm 3), the broadcast/delivery protocol
  (Algorithms 1–2), delivery-error detectors (Algorithms 4–5), and the
  closed-form error analysis (Section 5.3);
* :mod:`repro.sim` — the event-based evaluation environment of Section
  5.4 (network models, workloads, churn, the ε_min/ε_max oracle, and the
  experiment runner);
* :mod:`repro.crdt` — replicated data types from the paper's motivating
  application domain, consuming causal delivery;
* :mod:`repro.analysis` — statistics, parameter sweeps, and table/series
  rendering for the experiment harness.

Quickstart (simulation)::

    from repro import SimulationConfig, run_simulation
    result = run_simulation(SimulationConfig(n_nodes=50, r=100, k=4,
                                             duration_ms=30_000, seed=1))
    print(result.summary())

Quickstart (networked node, the :mod:`repro.api` factory)::

    from repro import NodeConfig, create_node
    node = await create_node("alice", NodeConfig(r=128, k=3))
    node.add_peer(("127.0.0.1", 9001))
    await node.broadcast("hello")
"""

from repro.api import (
    NodeConfig,
    create_clock,
    create_detector,
    create_endpoint,
    create_node,
)
from repro.core import (
    BasicAlertDetector,
    BloomCausalClock,
    CausalBroadcastEndpoint,
    DeliveryRecord,
    EntryVectorClock,
    LamportCausalClock,
    Message,
    NullDetector,
    PlausibleCausalClock,
    ProbabilisticCausalClock,
    RandomKeyAssigner,
    RefinedAlertDetector,
    Timestamp,
    VectorCausalClock,
    clock_schemes,
    detector_names,
    engine_names,
    optimal_k,
    p_error,
    p_fp,
    register_clock,
    register_detector,
    register_engine,
)
from repro.sim import SimulationConfig, SimulationResult, run_simulation

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # the assembly API — the documented way to build a participant
    "NodeConfig",
    "create_clock",
    "create_detector",
    "create_endpoint",
    "create_node",
    # most-used core names, re-exported for convenience
    "Timestamp",
    "EntryVectorClock",
    "ProbabilisticCausalClock",
    "PlausibleCausalClock",
    "LamportCausalClock",
    "VectorCausalClock",
    "BloomCausalClock",
    "RandomKeyAssigner",
    "CausalBroadcastEndpoint",
    "Message",
    "DeliveryRecord",
    "BasicAlertDetector",
    "RefinedAlertDetector",
    "NullDetector",
    "p_error",
    "p_fp",
    "optimal_k",
    # the plugin registry (see DESIGN.md §9)
    "register_clock",
    "register_engine",
    "register_detector",
    "clock_schemes",
    "engine_names",
    "detector_names",
    # simulation entry points
    "SimulationConfig",
    "SimulationResult",
    "run_simulation",
]
