"""Parameter sweeps: the machinery behind every figure reproduction.

A figure in the paper is a curve of error rate against one swept
parameter (K, λ, N, …) at fixed everything-else.  :func:`sweep_parameter`
runs the simulator across the swept values, repeating each point with
distinct seeds, and pools the per-run violation counts into one Wilson
estimate per point — error rates are binomial proportions, so pooling
across repeats is the highest-power aggregate.

Scaling: the environment variable ``REPRO_BENCH_SCALE`` (float, default 1)
multiplies run durations, letting CI run quick shapes and letting a user
reproduce tighter curves overnight (e.g. ``REPRO_BENCH_SCALE=20``).

Parallelism: every run in a sweep is an independent seeded simulation,
so the grid fans out across processes
(:func:`repro.sim.runner.run_simulations`) whenever the default runner is
in use — all cores by default, tunable via ``REPRO_SIM_WORKERS`` or the
``workers`` argument.  Results are aggregated in input order, so a
parallel sweep is bit-identical to a sequential one.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.analysis.stats import Estimate, mean_estimate, pooled_proportion
from repro.core.errors import ConfigurationError
from repro.sim.runner import (
    SimulationConfig,
    SimulationResult,
    run_simulation,
    run_simulations,
)

__all__ = ["SweepPoint", "sweep_parameter", "run_repeated", "bench_scale"]


def bench_scale(default: float = 1.0) -> float:
    """Duration multiplier from ``REPRO_BENCH_SCALE`` (>= 0.05)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "")
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError as exc:
        raise ConfigurationError(f"REPRO_BENCH_SCALE must be a float, got {raw!r}") from exc
    return max(0.05, value)


@dataclass
class SweepPoint:
    """Aggregated measurements of one swept value."""

    value: Any
    eps_min: Estimate
    eps_max: Estimate
    alert_rate: Estimate
    concurrency: Estimate
    deliveries: int
    results: List[SimulationResult]

    def row(self) -> List[Any]:
        """Row for :func:`repro.analysis.tables.render_table`."""
        return [
            self.value,
            self.eps_min.value,
            self.eps_min.low,
            self.eps_min.high,
            self.eps_max.value,
            self.alert_rate.value,
            self.concurrency.value,
            self.deliveries,
        ]

    ROW_HEADERS = [
        "value",
        "eps_min",
        "lo",
        "hi",
        "eps_max",
        "alert_rate",
        "X",
        "deliveries",
    ]


def run_repeated(
    config: SimulationConfig,
    repeats: int = 3,
    seed_base: int = 1000,
    runner: Callable[[SimulationConfig], SimulationResult] = run_simulation,
    workers: Optional[int] = None,
) -> List[SimulationResult]:
    """Run ``config`` with ``repeats`` distinct seeds.

    Repeats fan out across processes when the default runner is used
    (injected runners may close over unpicklable test state, so they
    always run sequentially, in order).
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    configs = [
        dataclasses.replace(config, seed=seed_base + repeat)
        for repeat in range(repeats)
    ]
    if runner is run_simulation:
        return run_simulations(configs, workers=workers)
    return [runner(run_config) for run_config in configs]


def _aggregate(value: Any, results: Sequence[SimulationResult]) -> SweepPoint:
    deliveries = sum(r.counters.deliveries for r in results)
    return SweepPoint(
        value=value,
        eps_min=pooled_proportion(
            (r.counters.violations, r.counters.deliveries) for r in results
        ),
        eps_max=pooled_proportion(
            (r.counters.violations + r.counters.ambiguous, r.counters.deliveries)
            for r in results
        ),
        alert_rate=pooled_proportion(
            (r.alerts.alerts, r.alerts.total) for r in results
        ),
        concurrency=mean_estimate([r.measured_concurrency for r in results]),
        deliveries=deliveries,
        results=list(results),
    )


def sweep_parameter(
    base: SimulationConfig,
    values: Sequence[Any],
    make_config: Callable[[SimulationConfig, Any], SimulationConfig],
    repeats: int = 3,
    seed_base: int = 1000,
    runner: Callable[[SimulationConfig], SimulationResult] = run_simulation,
    on_point: Optional[Callable[[SweepPoint], None]] = None,
    workers: Optional[int] = None,
) -> List[SweepPoint]:
    """Sweep one parameter.

    With the default runner the *entire* grid — every (point, repeat)
    pair — is flattened into one multiprocessing fan-out, so a
    figure-reproduction sweep saturates all cores instead of crawling
    point by point.  ``on_point`` then fires per point once the grid has
    completed, still in display order.

    Args:
        base: the fixed configuration.
        values: swept values, in display order.
        make_config: builds the per-point config, e.g.
            ``lambda cfg, k: dataclasses.replace(cfg, k=k)``.
        repeats: independent seeds per point.
        seed_base: seeds are ``seed_base + point_index * repeats + repeat``
            so every run in the sweep is independent.
        runner: injection point for tests (forces the sequential path).
        on_point: progress callback invoked after each aggregated point.
        workers: process count for the fan-out (None: ``REPRO_SIM_WORKERS``
            or all cores).
    """
    value_list = list(values)
    if runner is run_simulation:
        if repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
        grid = [
            dataclasses.replace(
                make_config(base, value), seed=seed_base + index * repeats + repeat
            )
            for index, value in enumerate(value_list)
            for repeat in range(repeats)
        ]
        all_results = run_simulations(grid, workers=workers)
        points = []
        for index, value in enumerate(value_list):
            chunk = all_results[index * repeats : (index + 1) * repeats]
            point = _aggregate(value, chunk)
            points.append(point)
            if on_point is not None:
                on_point(point)
        return points

    points: List[SweepPoint] = []
    for index, value in enumerate(value_list):
        config = make_config(base, value)
        results = run_repeated(
            config,
            repeats=repeats,
            seed_base=seed_base + index * repeats,
            runner=runner,
        )
        point = _aggregate(value, results)
        points.append(point)
        if on_point is not None:
            on_point(point)
    return points
