"""Markdown experiment reports.

Where :mod:`repro.analysis.tables` renders terminal output, this module
builds the markdown artifacts a reproduction package wants to check in:
a section per experiment with the configuration, a results table, the
qualitative claims checked, and pass/fail status.  The benchmark suite
writes plain-text reports; this builder is for users composing their own
experiment documents (and it keeps EXPERIMENTS.md regenerable).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.analysis.stats import Estimate
from repro.analysis.sweep import SweepPoint
from repro.core.errors import ConfigurationError

__all__ = ["ClaimCheck", "ExperimentSection", "ReportBuilder"]


@dataclass(frozen=True)
class ClaimCheck:
    """One qualitative claim and whether the data supports it."""

    claim: str
    passed: bool
    evidence: str = ""

    def render(self) -> str:
        """One markdown bullet with a pass/fail marker."""
        marker = "✅" if self.passed else "❌"
        evidence = f" — {self.evidence}" if self.evidence else ""
        return f"- {marker} {self.claim}{evidence}"


def _format_value(value: Any) -> str:
    if isinstance(value, Estimate):
        return f"{value.value:.3g} [{value.low:.3g}, {value.high:.3g}]"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e6:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class ExperimentSection:
    """One experiment: title, configuration, table, claims."""

    title: str
    description: str = ""
    configuration: Dict[str, Any] = field(default_factory=dict)
    headers: List[str] = field(default_factory=list)
    rows: List[List[Any]] = field(default_factory=list)
    claims: List[ClaimCheck] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append one table row (width-checked against the headers)."""
        if self.headers and len(cells) != len(self.headers):
            raise ConfigurationError(
                f"row width {len(cells)} does not match header width {len(self.headers)}"
            )
        self.rows.append(list(cells))

    def add_sweep(self, points: Sequence[SweepPoint]) -> None:
        """Populate the table from sweep points (standard columns)."""
        if not self.headers:
            self.headers = ["value", "eps_min", "eps_max", "X", "deliveries"]
        for point in points:
            self.add_row(
                point.value,
                point.eps_min,
                point.eps_max,
                point.concurrency,
                point.deliveries,
            )

    def check(self, claim: str, passed: bool, evidence: str = "") -> ClaimCheck:
        """Record one claim check and return it."""
        entry = ClaimCheck(claim=claim, passed=bool(passed), evidence=evidence)
        self.claims.append(entry)
        return entry

    @property
    def all_claims_pass(self) -> bool:
        """True when every recorded claim check passed."""
        return all(claim.passed for claim in self.claims)

    def render(self) -> str:
        """This section as markdown."""
        parts = [f"## {self.title}", ""]
        if self.description:
            parts += [self.description, ""]
        if self.configuration:
            config = ", ".join(
                f"{key}={_format_value(value)}" for key, value in self.configuration.items()
            )
            parts += [f"*Configuration:* {config}", ""]
        if self.headers and self.rows:
            parts.append("| " + " | ".join(self.headers) + " |")
            parts.append("|" + "|".join("---" for _ in self.headers) + "|")
            for row in self.rows:
                parts.append("| " + " | ".join(_format_value(cell) for cell in row) + " |")
            parts.append("")
        if self.claims:
            parts += [claim.render() for claim in self.claims]
            parts.append("")
        return "\n".join(parts)


class ReportBuilder:
    """Accumulates sections into one markdown document."""

    def __init__(self, title: str, preamble: str = "") -> None:
        self._title = title
        self._preamble = preamble
        self._sections: List[ExperimentSection] = []

    def section(self, title: str, **kwargs: Any) -> ExperimentSection:
        """Create, register, and return a new experiment section."""
        entry = ExperimentSection(title=title, **kwargs)
        self._sections.append(entry)
        return entry

    @property
    def sections(self) -> Tuple[ExperimentSection, ...]:
        """The registered sections, in insertion order."""
        return tuple(self._sections)

    @property
    def all_claims_pass(self) -> bool:
        """True when every claim of every section passed."""
        return all(section.all_claims_pass for section in self._sections)

    def render(self) -> str:
        """The whole document as markdown."""
        parts = [f"# {self._title}", ""]
        if self._preamble:
            parts += [self._preamble, ""]
        failing = [
            section.title for section in self._sections if not section.all_claims_pass
        ]
        if failing:
            parts += [
                "**Attention:** claims failing in: " + ", ".join(failing),
                "",
            ]
        for section in self._sections:
            parts.append(section.render())
        return "\n".join(parts)

    def write(self, path: str) -> None:
        """Render and write the document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())
