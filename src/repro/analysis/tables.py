"""Plain-text rendering of tables and figure series.

The benchmark harness prints, for every table and figure of the paper,
the same rows/series the paper reports.  Output is terminal-friendly:
aligned ASCII tables and a small log/linear-scale scatter chart so the
*shape* of each figure (optimum location, knees, crossovers) is visible
directly in the benchmark log without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.errors import ConfigurationError

__all__ = ["format_cell", "render_table", "render_series_table", "ascii_chart"]

Cell = Union[str, int, float, None]


def format_cell(value: Cell) -> str:
    """Human-friendly formatting: scientific for tiny floats, fixed else."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude < 1e-3 or magnitude >= 1e6:
            return f"{value:.3e}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: Optional[str] = None
) -> str:
    """Render an aligned ASCII table with a header rule."""
    header_cells = [str(h) for h in headers]
    body = [[format_cell(cell) for cell in row] for row in rows]
    for row in body:
        if len(row) != len(header_cells):
            raise ConfigurationError(
                f"row width {len(row)} does not match header width {len(header_cells)}"
            )
    widths = [len(h) for h in header_cells]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(header_cells))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in body)
    return "\n".join(parts)


def render_series_table(
    x_label: str,
    series: Dict[str, Sequence[Tuple[float, float]]],
    title: Optional[str] = None,
) -> str:
    """Render several named ``(x, y)`` series sharing an x axis as a table.

    Missing points (an x present in one series but not another) show "-".
    """
    xs: List[float] = sorted({x for points in series.values() for x, _ in points})
    lookup = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    headers = [x_label] + list(series)
    rows = [
        [x] + [lookup[name].get(x) for name in series]
        for x in xs
    ]
    return render_table(headers, rows, title=title)


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 72,
    height: int = 18,
    log_y: bool = False,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Scatter-plot named series on a character grid.

    Each series gets a marker (``*``, ``o``, ``+``, …).  ``log_y=True``
    plots on a log10 y-axis, which is how the paper's error-rate figures
    read best; zero/negative values are clamped to the smallest positive
    value present.
    """
    if width < 16 or height < 6:
        raise ConfigurationError("chart needs width >= 16 and height >= 6")
    markers = "*o+x#@%&"
    points_by_series = {
        name: [(float(x), float(y)) for x, y in points]
        for name, points in series.items()
        if points
    }
    if not points_by_series:
        return (title or "") + "\n(no data)"

    all_points = [p for pts in points_by_series.values() for p in pts]
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    if log_y:
        positive = [y for y in ys if y > 0]
        floor = min(positive) if positive else 1e-12
        ys = [max(y, floor) for y in ys]
        transform = lambda y: math.log10(max(y, floor))  # noqa: E731
    else:
        transform = lambda y: y  # noqa: E731

    x_min, x_max = min(xs), max(xs)
    ty = [transform(y) for y in ys]
    y_min, y_max = min(ty), max(ty)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(points_by_series.items()):
        marker = markers[index % len(markers)]
        for x, y in points:
            column = int(round((x - x_min) / x_span * (width - 1)))
            value = transform(max(y, 1e-300)) if log_y else y
            row = int(round((value - y_min) / y_span * (height - 1)))
            grid[height - 1 - row][column] = marker

    top = f"{(10 ** y_max if log_y else y_max):.3g}"
    bottom = f"{(10 ** y_min if log_y else y_min):.3g}"
    gutter = max(len(top), len(bottom)) + 1
    lines: List[str] = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top.rjust(gutter)
        elif row_index == height - 1:
            label = bottom.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label}|{''.join(row)}")
    lines.append(" " * gutter + "+" + "-" * width)
    lines.append(
        " " * gutter
        + f" {x_min:.3g}".ljust(width // 2)
        + f"{x_label}".center(8)
        + f"{x_max:.3g}".rjust(width - width // 2 - 9)
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} = {name}"
        for i, name in enumerate(points_by_series)
    )
    lines.append(" " * gutter + f" [{y_label}{', log' if log_y else ''}]  {legend}")
    return "\n".join(lines)
