"""Statistics helpers for the experiment harness.

The paper reports point estimates from >10⁸ messages per configuration;
our Python runs are smaller, so every reported number carries a
confidence interval.  Error *rates* are binomial proportions and use the
Wilson score interval (well-behaved at very small rates, where the normal
approximation collapses); real-valued metrics (latencies, concurrency)
use the usual normal-approximation interval over repeated runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

from repro.core.errors import ConfigurationError

__all__ = [
    "Estimate",
    "mean_estimate",
    "wilson_interval",
    "proportion_estimate",
    "pooled_proportion",
    "geometric_mean",
]

_Z_95 = 1.959963984540054  # two-sided 95% normal quantile


@dataclass(frozen=True)
class Estimate:
    """A point estimate with a two-sided confidence interval."""

    value: float
    low: float
    high: float
    n: int

    @property
    def half_width(self) -> float:
        """Half the confidence interval width."""
        return 0.5 * (self.high - self.low)

    def __str__(self) -> str:
        return f"{self.value:.4g} [{self.low:.4g}, {self.high:.4g}]"


def mean_estimate(values: Sequence[float], z: float = _Z_95) -> Estimate:
    """Mean of repeated measurements with a normal-approximation CI.

    With a single observation the interval degenerates to the point.
    """
    data = [float(v) for v in values]
    if not data:
        raise ConfigurationError("mean_estimate needs at least one value")
    n = len(data)
    mean = sum(data) / n
    if n == 1:
        return Estimate(value=mean, low=mean, high=mean, n=1)
    variance = sum((v - mean) ** 2 for v in data) / (n - 1)
    half = z * math.sqrt(variance / n)
    return Estimate(value=mean, low=mean - half, high=mean + half, n=n)


def wilson_interval(successes: int, trials: int, z: float = _Z_95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Stays inside [0, 1] and remains informative when ``successes`` is 0 —
    the common case for very low error rates.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ConfigurationError(
            f"invalid binomial counts: successes={successes}, trials={trials}"
        )
    if trials == 0:
        return (0.0, 1.0)
    phat = successes / trials
    z2 = z * z
    denominator = 1.0 + z2 / trials
    center = (phat + z2 / (2 * trials)) / denominator
    half = (
        z
        * math.sqrt(phat * (1.0 - phat) / trials + z2 / (4 * trials * trials))
        / denominator
    )
    return (max(0.0, center - half), min(1.0, center + half))


def proportion_estimate(successes: int, trials: int, z: float = _Z_95) -> Estimate:
    """Binomial proportion with its Wilson interval."""
    low, high = wilson_interval(successes, trials, z)
    value = successes / trials if trials else 0.0
    return Estimate(value=value, low=low, high=high, n=trials)


def pooled_proportion(counts: Iterable[Tuple[int, int]], z: float = _Z_95) -> Estimate:
    """Pool ``(successes, trials)`` pairs from repeated runs into one
    proportion estimate (the runs share a configuration, so pooling is the
    highest-power aggregate)."""
    total_successes = 0
    total_trials = 0
    for successes, trials in counts:
        total_successes += successes
        total_trials += trials
    return proportion_estimate(total_successes, total_trials, z)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (speedup-style aggregates)."""
    data = [float(v) for v in values]
    if not data:
        raise ConfigurationError("geometric_mean needs at least one value")
    if any(v <= 0 for v in data):
        raise ConfigurationError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in data) / len(data))
