"""Analysis toolkit: statistics, sweeps, and plain-text table/chart output."""

from repro.analysis.stats import (
    Estimate,
    geometric_mean,
    mean_estimate,
    pooled_proportion,
    proportion_estimate,
    wilson_interval,
)
from repro.analysis.persistence import ResultStore, compare_results, result_to_dict
from repro.analysis.report import ClaimCheck, ExperimentSection, ReportBuilder
from repro.analysis.sweep import SweepPoint, bench_scale, run_repeated, sweep_parameter
from repro.analysis.tables import ascii_chart, format_cell, render_series_table, render_table

__all__ = [
    "Estimate",
    "mean_estimate",
    "wilson_interval",
    "proportion_estimate",
    "pooled_proportion",
    "geometric_mean",
    "ResultStore",
    "result_to_dict",
    "compare_results",
    "ClaimCheck",
    "ExperimentSection",
    "ReportBuilder",
    "SweepPoint",
    "sweep_parameter",
    "run_repeated",
    "bench_scale",
    "format_cell",
    "render_table",
    "render_series_table",
    "ascii_chart",
]
