"""Serialising simulation results for storage and comparison.

Reproduction work accumulates runs: a result measured today gets compared
against last week's, or against a colleague's machine.  This module
flattens a :class:`~repro.sim.runner.SimulationResult` into a stable,
versioned, JSON-safe dictionary (:func:`result_to_dict`), writes/reads
collections of them (:class:`ResultStore`), and compares two runs of the
same configuration (:func:`compare_results`).

Only measurements and the reproducible configuration scalars are stored —
live objects (workloads, delay models) are recorded by their class names.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional

from repro.core.errors import ConfigurationError
from repro.sim.runner import SimulationResult

__all__ = ["SCHEMA_VERSION", "result_to_dict", "ResultStore", "compare_results"]

SCHEMA_VERSION = 1


def result_to_dict(result: SimulationResult, label: Optional[str] = None) -> Dict[str, Any]:
    """Flatten one result into a JSON-safe dict (schema-versioned)."""
    config = result.config
    return {
        "schema": SCHEMA_VERSION,
        "label": label,
        "config": {
            "n_nodes": config.n_nodes,
            "r": config.r,
            "k": config.k,
            "clock": config.clock,
            "key_assigner": config.key_assigner,
            "detector": config.detector,
            "duration_ms": config.duration_ms,
            "seed": config.seed,
            "recovery": config.recovery,
            "workload": type(config.workload).__name__ if config.workload else None,
            "delay_model": type(config.delay_model).__name__
            if config.delay_model
            else None,
            "dissemination": type(config.dissemination).__name__
            if config.dissemination
            else None,
        },
        "counters": {
            "deliveries": result.counters.deliveries,
            "correct": result.counters.correct,
            "violations": result.counters.violations,
            "ambiguous": result.counters.ambiguous,
            "eps_min": result.eps_min,
            "eps_max": result.eps_max,
        },
        "alerts": {
            "alerts": result.alerts.alerts,
            "alert_rate": result.alerts.alert_rate,
            "precision": result.alerts.precision,
            "recall_late": result.alerts.recall_late,
        },
        "traffic": {
            "sent": result.sent,
            "delivered_remote": result.delivered_remote,
            "duplicates": result.duplicates,
            "undelivered": result.undelivered_messages,
            "stuck_pending": result.stuck_pending,
        },
        "latency": result.latency,
        "membership": {
            "joins": result.joins,
            "leaves": result.leaves,
            "mean_membership": result.mean_membership,
        },
        "derived": {
            "measured_concurrency": result.measured_concurrency,
            "measured_p_nc": result.measured_p_nc,
            "recovery_sessions": result.recovery_sessions,
            "recovery_repaired": result.recovery_repaired,
            "adaptive_rekeys": result.adaptive_rekeys,
        },
        "runtime": {
            "sim_time_ms": result.sim_time_ms,
            "events": result.events,
            "wall_seconds": result.wall_seconds,
        },
    }


class ResultStore:
    """An append-only JSON-lines archive of run summaries."""

    def __init__(self, path: str) -> None:
        self._path = pathlib.Path(path)

    @property
    def path(self) -> pathlib.Path:
        """Filesystem location of the archive."""
        return self._path

    def append(self, result: SimulationResult, label: Optional[str] = None) -> None:
        """Add one run to the archive."""
        record = result_to_dict(result, label=label)
        with self._path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def load(self, label: Optional[str] = None) -> List[Dict[str, Any]]:
        """All stored records (optionally only those with ``label``)."""
        if not self._path.exists():
            return []
        records = []
        with self._path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ConfigurationError(
                        f"{self._path}:{line_number}: corrupt record: {exc}"
                    ) from exc
                if record.get("schema") != SCHEMA_VERSION:
                    raise ConfigurationError(
                        f"{self._path}:{line_number}: schema "
                        f"{record.get('schema')} != {SCHEMA_VERSION}"
                    )
                if label is None or record.get("label") == label:
                    records.append(record)
        return records

    def __len__(self) -> int:
        return len(self.load())


def compare_results(
    baseline: Dict[str, Any],
    candidate: Dict[str, Any],
    tolerance: float = 0.5,
) -> List[str]:
    """Compare two stored runs of the same configuration.

    Returns a list of human-readable discrepancies: configuration
    mismatches are always reported; measurement drift is reported when a
    rate differs by more than ``tolerance`` (relative) and the counts are
    large enough to matter.  An empty list means "same setup, compatible
    results".
    """
    issues: List[str] = []
    for key, base_value in baseline["config"].items():
        cand_value = candidate["config"].get(key)
        if base_value != cand_value:
            issues.append(f"config.{key}: {base_value!r} != {cand_value!r}")
    if issues:
        return issues  # measurement comparison is meaningless across configs

    for metric in ("eps_min", "eps_max"):
        base_rate = baseline["counters"][metric]
        cand_rate = candidate["counters"][metric]
        reference = max(base_rate, cand_rate)
        if reference > 0 and min(baseline["counters"]["deliveries"],
                                 candidate["counters"]["deliveries"]) >= 1000:
            drift = abs(base_rate - cand_rate) / reference
            if drift > tolerance:
                issues.append(
                    f"counters.{metric}: {base_rate:.3e} vs {cand_rate:.3e} "
                    f"(drift {drift:.0%} > {tolerance:.0%})"
                )
    if baseline["traffic"]["stuck_pending"] == 0 != candidate["traffic"]["stuck_pending"]:
        issues.append(
            f"traffic.stuck_pending: 0 vs {candidate['traffic']['stuck_pending']}"
        )
    return issues
