"""In-process asyncio message bus with configurable delays.

A transport for tests, demos, and asyncio-native experiments: every peer
registers under an address; ``send`` schedules the datagram's arrival
after a delay drawn from a :class:`~repro.sim.network.DelayModel` (the
same models the discrete-event simulator uses, including the paper's
Gaussian two-stage model).  Loss and duplication can be injected.

Unlike the simulator, time here is real ``asyncio`` time scaled by
``time_scale`` (default 1/1000: one simulated millisecond = one real
millisecond × scale, so the paper's 100 ms delays run in ~0.1 ms and a
whole exchange finishes in milliseconds of wall time).

``await bus.drain()`` blocks until no datagram is in flight — how tests
establish "the network is quiet" without sleeps.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Hashable, Optional

from repro.core.errors import ConfigurationError
from repro.net.peer import Transport
from repro.sim.network import DelayModel, GaussianDelayModel
from repro.util.rng import RandomSource

__all__ = ["LocalAsyncBus", "BusTransport"]

Address = Hashable


class LocalAsyncBus:
    """The hub: routes datagrams between registered endpoints."""

    def __init__(
        self,
        delay_model: Optional[DelayModel] = None,
        rng: Optional[RandomSource] = None,
        time_scale: float = 0.001,
        loss_rate: float = 0.0,
        duplicate_rate: float = 0.0,
    ) -> None:
        if time_scale <= 0:
            raise ConfigurationError(f"time_scale must be > 0, got {time_scale}")
        for name, value in (("loss_rate", loss_rate), ("duplicate_rate", duplicate_rate)):
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1), got {value}")
        self._delay_model = delay_model if delay_model is not None else GaussianDelayModel()
        self._rng = rng if rng is not None else RandomSource(seed=0).spawn("bus")
        self._time_scale = time_scale
        self._loss_rate = loss_rate
        self._duplicate_rate = duplicate_rate
        self._receivers: Dict[Address, Callable[[bytes, Address], None]] = {}
        self._in_flight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self.sent = 0
        self.dropped = 0

    def attach(self, address: Address) -> "BusTransport":
        """Create the transport endpoint for one peer address."""
        if address in self._receivers:
            raise ConfigurationError(f"address {address!r} already attached")
        self._receivers[address] = _unset_receiver
        return BusTransport(self, address)

    # ------------------------------------------------------------------
    # internal routing
    # ------------------------------------------------------------------

    def _set_receiver(self, address: Address, callback: Callable[[bytes, Address], None]) -> None:
        self._receivers[address] = callback

    def _detach(self, address: Address) -> None:
        self._receivers.pop(address, None)

    async def _send(self, source: Address, destination: Address, data: bytes) -> None:
        self.sent += 1
        if self._loss_rate and self._rng.random() < self._loss_rate:
            self.dropped += 1
            return
        copies = 1
        if self._duplicate_rate and self._rng.random() < self._duplicate_rate:
            copies = 2
        base = self._delay_model.sample_base(self._rng)
        for _ in range(copies):
            delay = self._delay_model.sample_arrival(self._rng, base) * self._time_scale
            self._in_flight += 1
            self._idle.clear()
            asyncio.get_running_loop().call_later(
                delay, self._arrive, destination, data, source
            )

    def _arrive(self, destination: Address, data: bytes, source: Address) -> None:
        try:
            receiver = self._receivers.get(destination)
            if receiver is not None and receiver is not _unset_receiver:
                receiver(data, source)
            else:
                self.dropped += 1
        finally:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.set()

    async def drain(self, timeout: float = 30.0) -> None:
        """Wait until no datagram is in flight.

        Deliveries may trigger new sends (none do in the causal layer,
        but applications might); drain loops until a quiescent check
        passes.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                raise asyncio.TimeoutError("bus did not drain in time")
            await asyncio.wait_for(self._idle.wait(), timeout=remaining)
            # Yield once; if nothing new took off, we are quiescent.
            await asyncio.sleep(0)
            if self._in_flight == 0:
                return

    @property
    def in_flight(self) -> int:
        """Datagrams currently scheduled but not yet delivered."""
        return self._in_flight


def _unset_receiver(data: bytes, addr: Address) -> None:
    raise ConfigurationError("transport receiver was never installed")


class BusTransport(Transport):
    """One peer's handle on a :class:`LocalAsyncBus`."""

    def __init__(self, bus: LocalAsyncBus, address: Address) -> None:
        self._bus = bus
        self._address = address

    @property
    def address(self) -> Address:
        """This endpoint's bus address."""
        return self._address

    async def send(self, destination: Address, data: bytes) -> None:
        await self._bus._send(self._address, destination, data)

    def set_receiver(self, callback: Callable[[bytes, Address], None]) -> None:
        self._bus._set_receiver(self._address, callback)

    async def close(self) -> None:
        self._bus._detach(self._address)
