"""Peer liveness: heartbeats, a timeout failure detector, quarantine.

Retransmission assumes the peer is *there*: a crashed or partitioned
peer turns every unacked frame into ``max_retries`` futile resends, and
a bounded send buffer full of its frames backpressures the sender's own
broadcasts.  This module separates "lossy" from "gone":

* every node beats a HEARTBEAT frame to every peer on a fixed interval
  (pure liveness proof — never acked, never retransmitted); a beat is
  *suppressed* when the session sent that peer any datagram within the
  interval — steady-state traffic is already a liveness proof — and
  beats that are sent ride the session's coalescing queue, so they
  batch with whatever else is leaving for that peer;
* :class:`PeerLivenessMonitor` tracks the last datagram of any kind
  seen from each peer and **quarantines** one that stays silent past
  ``quarantine_after`` (timeout failure detection — the classic
  eventually-perfect detector under partial synchrony; any datagram is
  evidence, so an idle-but-alive peer survives on heartbeats alone);
* a quarantined peer costs nothing: its retransmissions pause, its
  unacked frames are released (freeing the backpressure budget), and
  new broadcasts skip it — anti-entropy will heal it wholesale later;
* heartbeats *keep flowing* to quarantined peers — that asymmetry is
  what un-wedges two peers that quarantined each other across a
  partition: each keeps proving its liveness to the other, so whichever
  hears first resumes, and its resumed traffic resumes the other;
* the first datagram from a quarantined peer **resumes** it and
  triggers an immediate anti-entropy exchange to close the gap.

The monitor is pure bookkeeping (no tasks, no clocks of its own): the
node's liveness loop feeds it timestamps from the event loop and acts
on its verdicts, which keeps it trivially testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.errors import ConfigurationError

__all__ = ["LivenessPolicy", "PeerLivenessMonitor"]

Address = Hashable


@dataclass(frozen=True)
class LivenessPolicy:
    """Failure-detection tuning.

    Attributes:
        heartbeat_interval: seconds between HEARTBEAT frames to every
            peer (quarantined peers included — see module docstring).
        quarantine_after: silence (no datagram of any kind) after which
            a peer is quarantined.  Must cover several heartbeat
            intervals, or ordinary loss masquerades as death.
    """

    heartbeat_interval: float = 0.5
    quarantine_after: float = 2.0

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat_interval must be positive, got {self.heartbeat_interval}"
            )
        if self.quarantine_after < self.heartbeat_interval:
            raise ConfigurationError(
                f"quarantine_after ({self.quarantine_after}) must be >= "
                f"heartbeat_interval ({self.heartbeat_interval}); a peer must "
                f"get at least one heartbeat's grace"
            )


class PeerLivenessMonitor:
    """Last-seen bookkeeping and quarantine verdicts for a peer set."""

    def __init__(self, policy: LivenessPolicy) -> None:
        self._policy = policy
        self._last_seen: Dict[Address, float] = {}
        # address -> time the quarantine started, so the membership layer
        # can age a quarantine into a view eviction (``overdue``).
        self._quarantined: Dict[Address, float] = {}
        self.quarantines = 0
        self.resumes = 0

    @property
    def policy(self) -> LivenessPolicy:
        """The tuning this monitor applies."""
        return self._policy

    def track(self, address: Address, now: float) -> None:
        """Start watching a peer (idempotent; grants fresh grace)."""
        self._last_seen.setdefault(address, now)

    def forget(self, address: Address) -> None:
        """Stop watching a peer entirely (removed from membership)."""
        self._last_seen.pop(address, None)
        self._quarantined.pop(address, None)

    def touch(self, address: Address, now: float) -> bool:
        """Record evidence of life; True when this revives a quarantined
        peer (the caller should resume it and trigger anti-entropy)."""
        self._last_seen[address] = now
        if address in self._quarantined:
            self._quarantined.pop(address, None)
            self.resumes += 1
            return True
        return False

    def sweep(self, now: float) -> List[Address]:
        """Quarantine every tracked peer silent past the deadline;
        returns the newly quarantined addresses."""
        newly: List[Address] = []
        deadline = self._policy.quarantine_after
        for address, last in self._last_seen.items():
            if address in self._quarantined:
                continue
            if now - last > deadline:
                self._quarantined[address] = now
                self.quarantines += 1
                newly.append(address)
        return newly

    def is_quarantined(self, address: Address) -> bool:
        """Whether a peer is currently quarantined."""
        return address in self._quarantined

    def quarantined_peers(self) -> Tuple[Address, ...]:
        """All currently quarantined addresses."""
        return tuple(self._quarantined)

    def quarantined_since(self, address: Address) -> Optional[float]:
        """When the peer's current quarantine started (None if healthy)."""
        return self._quarantined.get(address)

    def overdue(self, now: float, age: float) -> List[Address]:
        """Peers whose quarantine has lasted longer than ``age`` seconds —
        the membership layer's eviction candidates.  Pure query: the
        caller decides what to do (and calls :meth:`forget` if it evicts)."""
        return [
            address
            for address, since in self._quarantined.items()
            if now - since > age
        ]
