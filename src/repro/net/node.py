"""A deployable causal broadcast node: endpoint + codec + reliable session.

This is the networked counterpart of the simulator's node — the piece the
ROADMAP's "runnable networked system" needs.  It stacks, bottom-up:

* any :class:`~repro.net.peer.Transport` (UDP, the in-process bus, or a
  fault-injecting wrapper),
* a :class:`~repro.net.session.ReliableSession` (acks, NACK-driven
  retransmission, backoff, backpressure),
* a :class:`MessageStore` keeping recently seen messages by their causal
  ``(sender, seq)`` id and answering anti-entropy digests,
* the :class:`~repro.core.protocol.CausalBroadcastEndpoint` (Algorithms
  1–2 + detector) and the binary :class:`~repro.core.codec.MessageCodec`.

On the wire each broadcast is delta-encoded per link when possible
(``wire_delta``): only the vector entries changed since this node's last
*full-encoded* message acked on that link travel — O(K) bytes instead of
O(R) — and the receiver reconstructs the full vector from its per-link
reference table.  New links, journal recovery, stale references and
reference misses (e.g. the peer crashed and lost its table) fall back to
the full encoding; a miss additionally triggers an immediate
anti-entropy exchange that re-delivers the affected messages full, after
which deltas resume.

Retransmission handles the common case (a datagram lost on one link);
the periodic anti-entropy exchange handles the rest: each node digests
its per-sender frontiers to every peer, and a peer that holds messages
outside that digest pushes them back over the reliable session.  Because
every stored message is relayed on request, anti-entropy also heals
*transitive* gaps — a message from A can reach C via B even if the A→C
link dropped every copy.

Construct nodes with :func:`repro.api.create_node` rather than by hand.
"""

from __future__ import annotations

import asyncio
import logging
import random
import time
import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Hashable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.clocks import EntryVectorClock
from repro.core.codec import CodecCounters, MessageCodec, RelayFrame, retain
from repro.core.detector import DeliveryErrorDetector, DetectorStats
from repro.core.errors import ConfigurationError
from repro.core.protocol import CausalBroadcastEndpoint, DeliveryRecord, EndpointStats, Message
from repro.net.journal import NodeJournal, RecoveredState, _Frontier
from repro.net.liveness import LivenessPolicy, PeerLivenessMonitor
from repro.net.overlay import PartialView
from repro.net.peer import Transport
from repro.net.session import ReliableSession, RetransmitPolicy, TransportStats
from repro.obs import JsonlExporter, MetricsHttpServer, MetricsRegistry, TraceRing

__all__ = ["StoreStats", "MessageStore", "NodeStats", "ReliableCausalNode"]

logger = logging.getLogger(__name__)

Address = Hashable
DeliveryHandler = Callable[[DeliveryRecord], None]
Frontiers = Dict[str, Tuple[int, Tuple[int, ...]]]


@dataclass
class StoreStats:
    """Operational counters of one :class:`MessageStore`."""

    evictions: int = 0
    unservable_requests: int = 0


@dataclass
class NodeStats:
    """One coherent snapshot of everything a node can report about itself.

    The structured counterpart of the registry snapshot: typed stats
    objects for programmatic use, plus the full registry ``snapshot``
    dict (the JSONL/Prometheus shape) for export and rendering.
    """

    node_id: str
    endpoint: EndpointStats
    detector: DetectorStats
    wire: TransportStats
    store: StoreStats
    pending: int
    decode_errors: int
    quarantines: int
    resumes: int
    snapshot: dict


class MessageStore:
    """Bounded store of encoded messages keyed by causal ``(sender, seq)``.

    Tracks, per sender, the *contiguous frontier* (every seq up to it is
    known) plus any out-of-order extras — exactly the shape of the
    anti-entropy digest.  Old message *bytes* are evicted FIFO beyond
    ``limit`` (the frontier bookkeeping stays, so digests remain
    truthful; evicted messages simply can no longer be served).

    **Sizing tradeoff**: ``limit`` bounds memory, but an evicted message
    is silently unservable to anti-entropy — a peer that missed it and
    lost every retransmission can then only be healed by a *third* node
    that still holds the bytes.  Size the store to cover the longest
    partition you intend to survive (``limit >= peak aggregate send
    rate x longest partition``); :attr:`stats` counts evictions and
    digest requests that hit the evicted range, and the first such
    unservable request is logged as a warning.
    """

    def __init__(self, limit: int = 8192) -> None:
        if limit <= 0:
            raise ConfigurationError(f"store limit must be positive, got {limit}")
        self._limit = limit
        self._data: Dict[Tuple[str, int], bytes] = {}
        self._order: Deque[Tuple[str, int]] = deque()
        self._contiguous: Dict[str, int] = {}
        self._extras: Dict[str, set] = {}
        self._evicted_high: Dict[str, int] = {}
        self._warned_unservable = False
        self.stats = StoreStats()

    def __len__(self) -> int:
        return len(self._data)

    def add(self, sender: str, seq: int, data: bytes) -> bool:
        """Record one encoded message; returns True when it was new."""
        if self.knows(sender, seq):
            return False
        self._data[(sender, seq)] = data
        self._order.append((sender, seq))
        extras = self._extras.setdefault(sender, set())
        extras.add(seq)
        frontier = self._contiguous.get(sender, 0)
        while frontier + 1 in extras:
            frontier += 1
            extras.discard(frontier)
        self._contiguous[sender] = frontier
        while len(self._data) > self._limit:
            evicted_sender, evicted_seq = self._order.popleft()
            self._data.pop((evicted_sender, evicted_seq), None)
            self.stats.evictions += 1
            if evicted_seq > self._evicted_high.get(evicted_sender, 0):
                self._evicted_high[evicted_sender] = evicted_seq
        return True

    def knows(self, sender: str, seq: int) -> bool:
        """Whether this id was ever recorded (bytes may be evicted)."""
        if seq <= self._contiguous.get(sender, 0):
            return True
        return seq in self._extras.get(sender, ())

    def get(self, sender: str, seq: int) -> Optional[bytes]:
        """The stored encoding, or None if unknown or evicted."""
        return self._data.get((sender, seq))

    def frontiers(self) -> Frontiers:
        """Per-sender ``(contiguous, extras)`` — the anti-entropy digest."""
        return {
            sender: (
                self._contiguous.get(sender, 0),
                tuple(sorted(self._extras.get(sender, ()))),
            )
            for sender in set(self._contiguous) | set(self._extras)
        }

    def missing_for(self, remote: Frontiers, limit: int = 256) -> Iterator[bytes]:
        """Stored encodings the remote digest does not cover (oldest first).

        Also detects (heuristically, via the per-sender evicted high-water
        mark) a request reaching into the evicted range: counted in
        :attr:`stats` and warned about once, because such gaps can only
        be healed by another node.
        """
        for sender, high in self._evicted_high.items():
            if remote.get(sender, (0, ()))[0] < high:
                self.stats.unservable_requests += 1
                if not self._warned_unservable:
                    self._warned_unservable = True
                    logger.warning(
                        "anti-entropy request reaches into evicted messages "
                        "(sender %r up to seq %d); this node cannot serve them "
                        "— raise the store limit to cover longer outages",
                        sender, high,
                    )
                break
        served = 0
        for sender, seq in self._order:
            if served >= limit:
                return
            contiguous, extras = remote.get(sender, (0, ()))
            if seq <= contiguous or seq in extras:
                continue
            data = self._data.get((sender, seq))
            if data is not None:
                served += 1
                yield data

    def restore_frontiers(self, frontiers: Frontiers) -> None:
        """Adopt journal-recovered per-sender coverage (empty store only).

        The restarted node *knows* these ids (duplicate suppression and
        digests must cover them) but no longer holds their bytes — the
        whole recovered range is marked evicted; peers keep the copies.
        """
        if self._data or self._contiguous or self._extras:
            raise ConfigurationError("restore_frontiers() requires an empty store")
        for sender, (contiguous, extras) in frontiers.items():
            self._contiguous[sender] = int(contiguous)
            self._extras[sender] = {int(seq) for seq in extras}
            high = max(int(contiguous), max((int(s) for s in extras), default=0))
            if high > 0:
                self._evicted_high[sender] = high

    def restore_message(self, sender: str, seq: int, data: bytes) -> None:
        """Re-stock the bytes of an id already covered by restored
        frontiers (own WAL-journalled broadcasts), making it servable."""
        key = (sender, seq)
        if key in self._data:
            return
        if not self.knows(sender, seq):
            raise ConfigurationError(
                f"restore_message() is for recovered ids; {key} is unknown"
            )
        self._data[key] = data
        self._order.append(key)

    def purge_sender(self, sender: str) -> int:
        """Drop everything recorded for one sender (view eviction).

        Removes the sender's bytes, ordering entries, and frontier
        bookkeeping, so an evicted peer stops occupying store budget and
        stops appearing in outgoing digests; returns the number of
        stored encodings dropped.  Peers that still hold the departed
        sender's messages may push a few back through anti-entropy until
        their own views catch up — those re-adds are bounded by their
        store limits and age out FIFO like any other traffic.
        """
        dropped = 0
        for key in [key for key in self._data if key[0] == sender]:
            del self._data[key]
            dropped += 1
        if dropped or sender in self._contiguous or sender in self._extras:
            self._order = deque(key for key in self._order if key[0] != sender)
        self._contiguous.pop(sender, None)
        self._extras.pop(sender, None)
        self._evicted_high.pop(sender, None)
        return dropped


class _DeltaTx:
    """Per-link delta-encoding sender state.

    ``inflight`` maps link sequence numbers of this node's own
    *full-encoded* broadcasts to ``(msg_seq, vector)``; once the peer's
    cumulative ack covers a link seq, that message's vector becomes a
    safe reference.  Only full sends qualify: a full that was acked was
    provably decoded and recorded by the receiver, whereas an acked
    *delta* might itself have bounced off a missing reference (the
    session acks frames it received, not messages the node decoded) —
    admitting those would let one miss cascade down the link.  Bounded
    by the session's ``send_buffer`` backpressure: ripe entries are
    popped on every send.
    """

    __slots__ = ("inflight", "ref_seq", "ref_vector")

    def __init__(self) -> None:
        self.inflight: Dict[int, Tuple[int, np.ndarray]] = {}
        self.ref_seq = -1
        self.ref_vector: Optional[np.ndarray] = None

    def advance(self, acked: int) -> None:
        """Adopt the newest acked inflight message as the reference."""
        if not self.inflight:
            return
        ripe = [link_seq for link_seq in self.inflight if link_seq <= acked]
        if not ripe:
            return
        best_seq, best_vector = self.ref_seq, self.ref_vector
        for link_seq in ripe:
            msg_seq, vector = self.inflight.pop(link_seq)
            if msg_seq > best_seq:
                best_seq, best_vector = msg_seq, vector
        self.ref_seq, self.ref_vector = best_seq, best_vector


class _DeltaRx:
    """Per-(peer, sender) delta-decoding receiver state.

    ``refs`` maps the sender's message seqs to their decoded vectors
    (candidate references for incoming deltas); ``keys`` is the sender's
    static key set, learned from the full encodings that established
    those references — deltas do not carry it on the wire.
    """

    __slots__ = ("keys", "refs")

    def __init__(self, keys: Tuple[int, ...]) -> None:
        self.keys = keys
        self.refs: "OrderedDict[int, np.ndarray]" = OrderedDict()


class ReliableCausalNode:
    """One networked participant with reliable dissemination.

    The public surface mirrors :class:`~repro.net.peer.AsyncCausalPeer`
    (broadcast / add_peer / deliveries) plus lifecycle (:meth:`start`,
    :meth:`close`) and wire observability (:meth:`transport_stats`).

    Args:
        node_id: this node's identity (the message sender id).
        clock: its logical clock (any member of the (n, r, k) family).
        transport: datagram substrate; the node's session owns it.
        detector: optional Algorithm 4/5 alert check.
        codec: message wire format (binary + JSON payloads by default).
        on_delivery: synchronous callback per delivery.
        policy: retransmission tuning (see :class:`RetransmitPolicy`).
        anti_entropy_interval: seconds between digest rounds; 0 disables
            the periodic exchange (retransmission-only mode).
        store_limit: bound on the recent-messages store.
        max_pending: optional safety bound on the endpoint's pending queue.
        engine: pending-queue drain strategy — ``indexed`` (default) or
            ``naive`` (the reference full-rescan drain).
        journal: optional :class:`~repro.net.journal.NodeJournal`; when
            given, the constructor replays any prior state (clock,
            delivered frontiers, link seqs) before a single datagram can
            arrive, and every send/delivery is logged ahead of the wire.
            Requires a pristine ``clock``.
        liveness: optional :class:`~repro.net.liveness.LivenessPolicy`;
            when given, :meth:`start` runs a heartbeat/failure-detector
            loop that quarantines silent peers and heals them on return
            (a beacon is skipped when the link sent any datagram within
            the last interval — traffic already proves liveness).
        wire_delta: delta-encode broadcasts per link against the last
            acked own message (O(K) wire bytes instead of O(R)); False
            restores the always-full-vector PR-1 encoding.  Incoming
            deltas are decoded regardless of this knob.
        overlay: optional :class:`~repro.net.overlay.PartialView`; when
            given, the node disseminates in **overlay mode** — each
            broadcast is pushed as a RELAY envelope to ``fanout`` peers
            from the bounded partial view (relayed onward by receivers,
            infect-and-die), anti-entropy digests and heartbeats go to
            the view instead of the full peer list, and per-node wire
            cost stops growing with cluster size.  ``None`` (default)
            keeps the full-mesh dissemination.
        metrics: the node's :class:`~repro.obs.MetricsRegistry`; created
            automatically (with a ``node=<id>`` label) when not given —
            every node is observable, the instruments cost nothing until
            snapshotted.
        trace: structured trace-event ring; created automatically.
        metrics_path: when set, a background task appends one registry
            snapshot per ``metrics_interval`` seconds to this JSONL
            file (plus a final line on :meth:`close`).
        metrics_interval: seconds between JSONL export lines.
        metrics_port: when set, :meth:`start` serves Prometheus text at
            ``http://127.0.0.1:<port>/metrics`` (0 = ephemeral; the
            bound port is ``node.metrics_server.port``).
    """

    def __init__(
        self,
        node_id: Hashable,
        clock: EntryVectorClock,
        transport: Transport,
        detector: Optional[DeliveryErrorDetector] = None,
        codec: Optional[MessageCodec] = None,
        on_delivery: Optional[DeliveryHandler] = None,
        policy: Optional[RetransmitPolicy] = None,
        anti_entropy_interval: float = 0.5,
        store_limit: int = 8192,
        max_pending: Optional[int] = None,
        engine: str = "indexed",
        journal: Optional[NodeJournal] = None,
        liveness: Optional[LivenessPolicy] = None,
        wire_delta: bool = True,
        overlay: Optional[PartialView] = None,
        metrics: Optional[MetricsRegistry] = None,
        trace: Optional[TraceRing] = None,
        metrics_path: Optional[str] = None,
        metrics_interval: float = 1.0,
        metrics_port: Optional[int] = None,
    ) -> None:
        if anti_entropy_interval < 0:
            raise ConfigurationError(
                f"anti_entropy_interval must be >= 0, got {anti_entropy_interval}"
            )
        if metrics_interval <= 0:
            raise ConfigurationError(
                f"metrics_interval must be > 0, got {metrics_interval}"
            )
        self._node_id = node_id
        self._codec = codec if codec is not None else MessageCodec()
        self._on_delivery = on_delivery
        self._peers: List[Address] = []
        self._deliveries: List[DeliveryRecord] = []
        self._decode_errors = 0
        self._anti_entropy_interval = anti_entropy_interval
        # Digest rounds are spread uniformly over [0.5, 1.5) x interval
        # (mean preserved): a swarm of nodes started together must not
        # fire synchronized digest storms every interval forever.
        self._anti_entropy_rng = random.Random(
            zlib.crc32(str(node_id).encode("utf-8")) ^ 0x5EED
        )
        self._anti_entropy_task: Optional[asyncio.Task] = None
        self._liveness_task: Optional[asyncio.Task] = None
        self._heal_tasks: Set[asyncio.Task] = set()
        self._heartbeat_count = 0
        self._heartbeats_suppressed = 0
        self._wire_delta = wire_delta
        # Delta wire state: per-peer sender references (own acked
        # messages) and a per-(peer, sender) table of recently received
        # vectors that incoming deltas may reference.
        self._delta_tx: Dict[Address, _DeltaTx] = {}
        self._delta_rx: Dict[Address, Dict[str, _DeltaRx]] = {}
        self._resync_last: Dict[Address, float] = {}
        # View-evicted peers: address -> sender id, bounded so a long
        # churn history cannot grow it; frames from these addresses are
        # dropped (with one warning per address) until a re-join clears
        # the mark.
        self._evicted_peers: "OrderedDict[Address, str]" = OrderedDict()
        self._stale_warned: Set[Address] = set()
        self._stale_senders_warned: Set[str] = set()
        self._stale_frames = 0
        # Per-sender *delivered* coverage, maintained whether or not a
        # journal exists: the membership layer's join state transfer
        # pairs this with the clock vector (using the *received* store
        # frontiers there would mark pending messages as covered and
        # wedge the joiner).
        self._delivered_frontiers: Dict[str, _Frontier] = {}
        # Attached by GroupMembership.attach(); duck-typed to avoid an
        # import cycle with repro.net.membership.
        self.membership = None
        # Set by repro.api.create_node when --adaptive is on; duck-typed
        # for the same reason (repro.net.adaptive imports nothing from
        # here, but the assembly order is api's business).
        self.adaptive = None
        self.store = MessageStore(limit=store_limit)
        self.journal = journal
        self.liveness = (
            PeerLivenessMonitor(liveness) if liveness is not None else None
        )
        self._liveness_policy = liveness
        self.overlay = overlay

        # Observability: every node owns a registry (collectors are free
        # until snapshotted) and a trace ring; the exporter and HTTP
        # endpoint are armed in start() when configured.
        self.metrics = (
            metrics if metrics is not None
            else MetricsRegistry(labels={"node": str(node_id)})
        )
        self.trace = trace if trace is not None else TraceRing()
        self._metrics_path = metrics_path
        self._metrics_interval = metrics_interval
        self._metrics_port = metrics_port
        self._exporter: Optional[JsonlExporter] = None
        self._export_task: Optional[asyncio.Task] = None
        self.metrics_server: Optional[MetricsHttpServer] = None

        # Recovery runs strictly before the session exists: by the time
        # a datagram can arrive, the clock, duplicate filter, store
        # frontiers, and link seqs already reflect the pre-crash state.
        self.recovered: Optional[RecoveredState] = None
        if journal is not None:
            journal.bind_metrics(self.metrics)  # before open(): times replay
            self.recovered = journal.open()
        if self.recovered is not None:
            if (
                self.recovered.own_keys
                and tuple(self.recovered.own_keys) != tuple(clock.own_keys)
            ):
                # A membership rekey (join state transfer) changed the
                # effective entry set; the pristine clock adopts it
                # before the vector is restored.
                clock.rekey(self.recovered.own_keys)
            clock.restore_state(self.recovered.vector, self.recovered.send_seq)

        self.endpoint = CausalBroadcastEndpoint(
            process_id=str(node_id),
            clock=clock,
            detector=detector,
            deliver_callback=self._handle_delivery,
            max_pending=max_pending,
            engine=engine,
        )
        self.endpoint.bind_metrics(self.metrics, self.trace)
        if self.recovered is not None:
            # The duplicate filter shares the journal's frontier shape, so
            # recovery adopts the coverage wholesale — O(senders) instead
            # of one mark_seen() per historical message.
            self.endpoint.restore_seen(self.recovered.delivered)
            self.store.restore_frontiers(self.recovered.delivered)
            for sender, (contiguous, extras) in self.recovered.delivered.items():
                self._delivered_frontiers[sender] = _Frontier(contiguous, extras)
            for seq, data in self.recovered.own_messages.items():
                self.store.restore_message(str(node_id), seq, data)
            # Restart accounting: a fresh detector resumes the crashed
            # incarnation's lifetime counters, so the exported alert
            # *rate* stays meaningful across restarts.
            stats = self.endpoint.detector.stats
            stats.checks += self.recovered.detector_checks
            stats.alerts += self.recovered.detector_alerts

        self.session = ReliableSession(
            transport,
            on_message=self._handle_wire_message,
            on_digest=self._handle_digest,
            policy=policy,
            on_peer_activity=(
                self._handle_peer_activity if self.liveness is not None else None
            ),
            on_link_seq=(journal.ensure_lease if journal is not None else None),
            on_membership=self._handle_membership_frame,
            on_relay=(self._handle_relay if overlay is not None else None),
            data_gate=self._data_plane_admitted,
        )
        # A reference must outlive the window in which a delta naming it
        # can still arrive; the sender's send_buffer bounds that window.
        self._delta_rx_cap = max(128, self.session.policy.send_buffer + 32)
        if self.recovered is not None:
            for address, link in self.recovered.links.items():
                self.session.restore_peer(
                    address,
                    next_seq=link.tx_next,
                    recv_cumulative=link.rx_cumulative,
                    recv_out_of_order=link.rx_out_of_order,
                )
            for address, senders in self.recovered.delta_refs.items():
                for sender, (seq, vector, keys) in senders.items():
                    restored = np.asarray(vector, dtype=np.int64)
                    restored.setflags(write=False)
                    self._record_ref(
                        address, sender, int(seq), restored,
                        tuple(int(k) for k in keys),
                    )
        self._transport = transport
        self.session.bind_metrics(self.metrics)
        # Batched transports export their own I/O tallies (per-wakeup
        # datagram histogram, burst counters); duck-typed so wrappers
        # (FaultyTransport) pass the call through to the real socket.
        transport_bind = getattr(transport, "bind_metrics", None)
        if transport_bind is not None:
            transport_bind(self.metrics)
        self._relay_hops_histogram = None
        self._relay_latency_histogram = None
        if overlay is not None:
            try:
                overlay.set_local_address(self.local_address)
            except ConfigurationError:
                pass  # address-less transport; gossip omits the self record
            overlay.bind_metrics(self.metrics)
            self._relay_hops_histogram = self.metrics.histogram(
                "repro_relay_hops",
                bounds=(1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0),
            )
            # Origin clock vs local clock: only meaningful where the two
            # share a time base (process-local swarms) — see PROTOCOL §10.
            self._relay_latency_histogram = self.metrics.histogram(
                "repro_relay_coverage_seconds"
            )
        self._bind_node_metrics()

    def _bind_node_metrics(self) -> None:
        """Pull collector for the node-level tallies (store, liveness,
        codec) — the structs stay authoritative, the registry mirrors."""
        store_evictions = self.metrics.counter("repro_store_evictions_total")
        store_unservable = self.metrics.counter("repro_store_unservable_total")
        store_size = self.metrics.gauge("repro_store_size")
        decode_errors = self.metrics.counter("repro_decode_errors_total")
        quarantines = self.metrics.counter("repro_liveness_quarantines_total")
        resumes = self.metrics.counter("repro_liveness_resumes_total")
        suppressed = self.metrics.counter("repro_heartbeats_suppressed_total")
        stale = self.metrics.counter("repro_stale_frames_total")
        # Zero-copy codec tallies: the message codec (this node's) and
        # the session's frame codec each keep slotted ints; export their
        # sum per field as repro_codec_*_total.
        codec_names = type(self._codec.counters).__slots__
        codec_counters = {
            name: self.metrics.counter(f"repro_codec_{name}_total")
            for name in codec_names
        }

        def collect() -> None:
            store_evictions.set(self.store.stats.evictions)
            store_unservable.set(self.store.stats.unservable_requests)
            store_size.set(len(self.store))
            decode_errors.set(self._decode_errors)
            if self.liveness is not None:
                quarantines.set(self.liveness.quarantines)
                resumes.set(self.liveness.resumes)
            suppressed.set(self._heartbeats_suppressed)
            stale.set(self._stale_frames)
            message_tallies = self._codec.counters
            frame_tallies = self.session.codec_counters
            for name, counter in codec_counters.items():
                counter.set(
                    getattr(message_tallies, name) + getattr(frame_tallies, name)
                )

        self.metrics.register_collector(collect)

    def _now(self) -> float:
        """Monotonic protocol time: the event-loop clock when one is
        running (what every other timer in the stack uses), the system
        monotonic clock otherwise (e.g. synchronous test drivers).
        Overridable — the fake-clock regression tests monkeypatch it."""
        try:
            return asyncio.get_running_loop().time()
        except RuntimeError:
            return time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "ReliableCausalNode":
        """Start the retransmit timer, anti-entropy, liveness, and
        metrics-export loops (and the Prometheus endpoint, if any)."""
        self.session.start()
        loop = asyncio.get_running_loop()
        if self._anti_entropy_interval > 0 and self._anti_entropy_task is None:
            self._anti_entropy_task = loop.create_task(self._anti_entropy_loop())
        if self.liveness is not None and self._liveness_task is None:
            self._liveness_task = loop.create_task(self._liveness_loop())
        if self._metrics_path is not None and self._exporter is None:
            self._exporter = JsonlExporter(self._metrics_path)
            self._export_task = loop.create_task(self._export_loop())
        if self._metrics_port is not None and self.metrics_server is None:
            self.metrics_server = MetricsHttpServer(
                self.metrics, port=self._metrics_port
            )
            await self.metrics_server.start()
        if self.membership is not None:
            self.membership.start()
        if self.adaptive is not None:
            self.adaptive.start()
        return self

    async def close(self) -> None:
        """Stop background tasks and release the transport.

        Deliberately no journal snapshot: the recovery path must work
        from whatever the WAL holds (crash-only design), and a graceful
        close taking a different path would leave the crash path
        untested in production.
        """
        if self.membership is not None:
            self.membership.stop()
        if self.adaptive is not None:
            await self.adaptive.stop()
        for task in (self._anti_entropy_task, self._liveness_task,
                     self._export_task):
            if task is not None:
                task.cancel()
        self._anti_entropy_task = None
        self._liveness_task = None
        self._export_task = None
        for task in list(self._heal_tasks):
            task.cancel()
        self._heal_tasks.clear()
        if self.metrics_server is not None:
            await self.metrics_server.close()
            self.metrics_server = None
        await self.session.close()
        if self.journal is not None:
            self.journal.close()
        if self._exporter is not None:
            # One final line so even a run shorter than the export
            # interval leaves a complete snapshot behind.
            self._exporter.export(self.metrics.snapshot(), ts=self._now())
            self._exporter.close()
            self._exporter = None

    async def _export_loop(self) -> None:
        while True:
            await asyncio.sleep(self._metrics_interval)
            self._exporter.export(self.metrics.snapshot(), ts=self._now())

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def add_peer(self, address: Address) -> None:
        """Start broadcasting to ``address`` (idempotent).

        Also clears any eviction mark on the address: a node that left
        and rejoined is a member again, not a stale-frame source.
        """
        if address not in self._peers:
            self._peers.append(address)
        if self.overlay is not None:
            self.overlay.add(address)
        self._evicted_peers.pop(address, None)
        self._stale_warned.discard(address)

    def remove_peer(self, address: Address) -> None:
        """Stop broadcasting to ``address`` and purge its per-peer state.

        Without the purge, the peer's unacked retransmission queue,
        per-peer stats, NACK pacing, and delta-encoding reference tables
        would linger in the session and node forever (and its pending
        frames would keep being retransmitted into the void).  Missing
        addresses are fine.
        """
        if address in self._peers:
            self._peers.remove(address)
        if self.overlay is not None:
            self.overlay.discard(address)
        self.session.forget(address)
        if self.liveness is not None:
            self.liveness.forget(address)
        self._delta_tx.pop(address, None)
        self._delta_rx.pop(address, None)
        self._resync_last.pop(address, None)

    def evict_peer(self, address: Address, sender_id: Optional[str] = None) -> None:
        """Expel a peer from this node's runtime state (view eviction).

        On top of :meth:`remove_peer`, purges the departed sender's
        message-store bookkeeping (``sender_id``, when known) and marks
        the address so late frames from it are dropped with a log-once
        warning instead of silently re-creating per-peer session state.

        Deliberately *not* purged: the endpoint's seen-filter entries
        for the departed sender.  They cost O(1) per sender, and
        dropping them would re-deliver that sender's messages if a peer
        relays them later — correctness over a few bytes.
        """
        self.remove_peer(address)
        if sender_id is not None:
            self.store.purge_sender(str(sender_id))
        self._evicted_peers[address] = str(sender_id) if sender_id is not None else ""
        while len(self._evicted_peers) > 256:
            stale_addr, _ = self._evicted_peers.popitem(last=False)
            self._stale_warned.discard(stale_addr)

    def _drop_if_evicted(self, addr: Address, kind: str) -> bool:
        """True (and count/trace/warn-once) when ``addr`` was evicted."""
        if addr not in self._evicted_peers:
            return False
        self._stale_frames += 1
        if addr not in self._stale_warned:
            self._stale_warned.add(addr)
            logger.warning(
                "dropping %s from evicted peer %r; it is no longer in the "
                "group view (it must re-join to be heard again)",
                kind, addr,
            )
        self.trace.emit("stale_frame", ts=self._now(), peer=str(addr), frame=kind)
        # The session auto-creates per-peer state for any sender; do not
        # let a chatty evicted peer re-grow it.
        self.session.forget(addr)
        return True

    def _handle_membership_frame(self, frame, addr: Address) -> None:
        if self.membership is not None:
            self.membership.handle_frame(frame, addr)

    def _sender_in_view(self, sender: str) -> bool:
        """Whether a message's *origin* is still a group member.

        Frames arriving from an evicted address are dropped earlier by
        :meth:`_drop_if_evicted`; this guards the other door, a live
        peer relaying a departed sender's messages after the purge.
        Without a membership layer (or before one installs a view)
        every sender is admitted.
        """
        membership = self.membership
        if membership is None:
            return True
        view = membership.view
        if view is None or str(self.node_id) == sender:
            return True
        if view.get(sender) is not None:
            return True
        return any(str(member.node_id) == sender for member in view.members)

    def _data_plane_admitted(self) -> bool:
        """Session data gate: a node with a membership layer ingests no
        DATA/DIGEST until it is a group member.  Anything pushed at it
        mid-JOIN (an anti-entropy round racing the handshake) would void
        the pristine state transfer; the sender's retransmits re-offer
        it all once the view admits us."""
        return self.membership is None or self.membership.joined

    @property
    def peers(self) -> Sequence[Address]:
        """Addresses this node currently broadcasts to."""
        return tuple(self._peers)

    @property
    def node_id(self) -> Hashable:
        """This node's identity."""
        return self._node_id

    @property
    def transport(self) -> Transport:
        """The underlying datagram transport."""
        return self._transport

    @property
    def codec_counters(self) -> "CodecCounters":
        """Zero-copy tallies for this node's message codec (``retain``
        copies at the journal boundary, delta decodes); the frame-level
        view counts live on :attr:`ReliableSession.codec_counters`."""
        return self._codec.counters

    @property
    def epoch(self) -> int:
        """The clock-sizing epoch currently stamped on outgoing frames
        (low 8 bits ride the wire header; PROTOCOL.md §11)."""
        return self._codec.epoch

    def set_epoch(self, epoch: int) -> None:
        """Stamp subsequent encodings with ``epoch``.

        Called by the membership layer on every view install so that
        mixed-epoch frames are tellable apart while an (R, K) bump
        drains through the group; decoding stays epoch-agnostic (a
        mismatch only bumps ``codec_epoch_mismatches``).
        """
        self._codec.epoch = epoch

    def flush_delta_refs(self) -> None:
        """Drop the per-link delta-encoding references.

        Must be called whenever this node's own key set changes while
        the session is live (an epoch bump or a re-admission grant):
        peers cache the sender's keys from full encodings, so the first
        post-rekey broadcast must travel full to teach them the new
        identity — delta frames do not carry keys on the wire.
        """
        self._delta_tx.clear()

    @property
    def local_address(self) -> Address:
        """The transport's bound address (where peers should send).

        Raises :class:`ConfigurationError` for transports that have no
        notion of a bound address.
        """
        address = getattr(self._transport, "local_address", None)
        if address is None:
            address = getattr(self._transport, "address", None)
        if address is None:
            raise ConfigurationError(
                f"{type(self._transport).__name__} exposes no local address"
            )
        return address

    # ------------------------------------------------------------------
    # sending / receiving
    # ------------------------------------------------------------------

    async def broadcast(self, payload: Any = None) -> Message:
        """Timestamp, self-deliver, store, and reliably send to all peers.

        Quarantined peers are skipped — their copy arrives through the
        anti-entropy exchange when they resume.
        """
        # Real monotonic time, not the 0.0 default: the refined
        # detector's recent-window eviction is keyed on it (a frozen
        # clock silently disables Algorithm 5's time bound).
        message = self.endpoint.broadcast(payload, now=self._now())
        data = self._codec.encode(message)
        self.store.add(str(message.sender), message.seq, data)
        if self.overlay is not None:
            # Overlay mode: one RELAY envelope to `fanout` view targets;
            # the receivers' relays and the anti-entropy backstop do the
            # rest.  Wire cost here is O(fanout), not O(N).
            self.overlay.stats.relay_pushes += 1
            self._relay_push(
                str(message.sender), message.seq, data,
                hops=0, sent_at=self._now(),
            )
            return message
        # Mesh mode: the payload body is packed once and shared across
        # every per-peer DATA frame — only the link-seq header differs.
        body = self.session.data_body(data)
        await asyncio.gather(
            *(
                self._send_message(address, message, data, body)
                for address in self._live_peers()
            )
        )
        return message

    async def _send_message(
        self,
        address: Address,
        message: Message,
        full: bytes,
        body: Optional[bytes] = None,
    ) -> None:
        """Send one broadcast over one link, delta-encoded when a
        reference is established (falls back to ``full`` otherwise)."""
        wire = full
        stats = self.session.peer_stats(address)
        tx: Optional[_DeltaTx] = None
        if self._wire_delta:
            tx = self._delta_tx.setdefault(address, _DeltaTx())
            tx.advance(self.session.acked_cumulative(address))
            if tx.ref_vector is not None:
                delta = self._codec.encode_delta(message, tx.ref_seq, tx.ref_vector)
                # Refresh policy: a delta must earn its keep.  As the
                # reference ages, more entries diverge and the delta
                # grows; once it stops being clearly smaller, send full
                # instead — which (once acked) becomes the new
                # reference, shrinking subsequent deltas again.  Under
                # loss the ack never comes, so this degrades to full
                # encoding by itself, exactly the safe fallback.
                if len(delta) * 2 < len(full):
                    wire = delta
        if wire is full:
            stats.full_sent += 1
        else:
            stats.delta_sent += 1
        link_seq = await self.session.send(
            address, wire, shared_body=(body if wire is full else None)
        )
        if tx is not None and wire is full:
            tx.inflight[link_seq] = (message.seq, message.timestamp.vector)

    def _live_peers(self) -> List[Address]:
        if self.liveness is None:
            return list(self._peers)
        return [
            address
            for address in self._peers
            if not self.liveness.is_quarantined(address)
        ]

    # ------------------------------------------------------------------
    # overlay dissemination (PROTOCOL.md §10)
    # ------------------------------------------------------------------

    def _overlay_live(self, address: Address) -> bool:
        """Push-target filter: never relay at evicted or quarantined
        addresses (their copy arrives via anti-entropy on return)."""
        if address in self._evicted_peers:
            return False
        if self.liveness is not None and self.liveness.is_quarantined(address):
            return False
        return True

    def _relay_push(
        self,
        origin: str,
        seq: int,
        payload: bytes,
        hops: int,
        sent_at: float,
        exclude: Tuple[Address, ...] = (),
    ) -> int:
        """Encode one RELAY envelope and push it to ``fanout`` targets.

        Used for both origin pushes (``hops=0``) and forwards; the
        envelope is serialized once however many targets it fans out to.
        """
        overlay = self.overlay
        targets = overlay.push_targets(exclude=exclude, live_filter=self._overlay_live)
        if not targets:
            return 0
        frame = RelayFrame(
            origin=origin,
            seq=seq,
            hops=hops,
            sent_at=sent_at,
            sample=overlay.gossip_sample(),
            payload=payload,
        )
        return self.session.send_relay(targets, frame)

    def _handle_relay(self, frame: RelayFrame, addr: Address) -> None:
        """Intake one RELAY envelope: merge the view sample, dedup on
        the envelope header, deliver, and forward on first intake only
        (infect-and-die)."""
        if self._drop_if_evicted(addr, "relay"):
            return
        overlay = self.overlay
        if overlay is None:
            return
        overlay.merge_sample(frame.sample)
        message_id = (frame.origin, frame.seq)
        if self.endpoint.has_seen(message_id):
            # The SeenFilter absorbs gossip redundancy without paying
            # for a payload decode — the envelope header is enough.
            overlay.stats.relay_duplicates += 1
            return
        if not self._sender_in_view(frame.origin):
            self._stale_frames += 1
            self.trace.emit("stale_sender", ts=self._now(), sender=frame.origin)
            return
        try:
            message = self._codec.decode(frame.payload)
        except Exception:
            self._note_decode_error(addr)
            return
        if (str(message.sender), message.seq) != message_id:
            # Envelope header contradicting its payload: corrupt or
            # forged; believing the header would poison the SeenFilter.
            self._note_decode_error(addr)
            return
        # Journal boundary: the envelope payload may be a borrowed view
        # (batched receive ring); the store and any forward outlive it.
        full = retain(frame.payload, self._codec.counters)
        now = self._now()
        overlay.stats.relay_first_intake += 1
        if self._relay_hops_histogram is not None:
            self._relay_hops_histogram.observe(float(frame.hops))
        if self._relay_latency_histogram is not None and frame.sent_at > 0.0:
            latency = now - frame.sent_at
            if latency >= 0.0:
                # Negative deltas mean origin and receiver do not share
                # a clock; the histogram only tracks comparable pairs.
                self._relay_latency_histogram.observe(latency)
        self.store.add(frame.origin, message.seq, full)
        self.endpoint.on_receive(message, now=now)
        if frame.hops < overlay.max_hops:
            sent = self._relay_push(
                frame.origin, frame.seq, full,
                hops=frame.hops + 1, sent_at=frame.sent_at,
                exclude=(addr,),
            )
            if sent:
                overlay.stats.relay_forwarded += 1

    def _handle_wire_message(self, data: bytes, addr: Address) -> None:
        if self._drop_if_evicted(addr, "data"):
            return
        stats = self.session.peer_stats(addr)
        if MessageCodec.is_delta(data):
            try:
                sender, _seq, ref_seq = self._codec.delta_header(data)
            except Exception:
                self._note_decode_error(addr)
                return
            entry = self._delta_rx.get(addr, {}).get(sender)
            ref_vector = entry.refs.get(ref_seq) if entry is not None else None
            if ref_vector is None:
                # Unknown reference (we crashed, or the table rolled
                # over): the message is unrecoverable from this datagram
                # alone — ask for an immediate anti-entropy exchange,
                # which re-delivers it in the full encoding.
                stats.delta_ref_misses += 1
                self.trace.emit(
                    "delta_ref_miss", ts=self._now(),
                    peer=str(addr), sender=sender, ref_seq=ref_seq,
                )
                self._request_resync(addr)
                return
            try:
                message = self._codec.decode_delta(data, ref_vector, entry.keys)
            except Exception:
                self._note_decode_error(addr)
                return
            stats.delta_received += 1
            # The store must hold the full encoding: anti-entropy serves
            # third parties that do not share this link's references.
            full = self._codec.encode(message)
        else:
            try:
                message = self._codec.decode(data)
            except Exception:
                # A malformed datagram must never take the node down.
                self._note_decode_error(addr)
                return
            stats.full_received += 1
            # Journal boundary: the store (and through it the WAL and
            # anti-entropy re-serves) keeps the encoding past this
            # callback, so a borrowed receive-ring view must become
            # owned bytes here.  No-op for the copying transports.
            full = retain(data, self._codec.counters)
        sender = str(message.sender)
        if not self._sender_in_view(sender):
            # A live peer relayed state from a sender the view has since
            # expelled (an anti-entropy round racing the purge).
            # Admitting it would resurrect exactly the store state the
            # eviction just removed.
            self._stale_frames += 1
            if sender not in self._stale_senders_warned:
                self._stale_senders_warned.add(sender)
                logger.warning(
                    "dropping relayed message from departed sender %r; "
                    "it is no longer in the group view", sender,
                )
            self.trace.emit("stale_sender", ts=self._now(), sender=sender)
            return
        self._record_ref(
            addr, sender, message.seq,
            message.timestamp.vector, message.timestamp.sender_keys,
        )
        self.store.add(sender, message.seq, full)
        # Every receive path funnels through here — direct sends,
        # retransmissions, and anti-entropy pushes alike — so this one
        # real timestamp covers them all (it used to default to 0.0,
        # which froze the refined detector's eviction clock).
        self.endpoint.on_receive(message, now=self._now())

    def _note_decode_error(self, addr: Address) -> None:
        self._decode_errors += 1
        self.trace.emit("decode_error", ts=self._now(), peer=str(addr))

    def _record_ref(
        self,
        addr: Address,
        sender: str,
        seq: int,
        vector: np.ndarray,
        keys: Tuple[int, ...],
    ) -> None:
        """Remember a received vector as a potential delta reference."""
        entry = self._delta_rx.setdefault(addr, {}).setdefault(
            sender, _DeltaRx(keys)
        )
        if entry.keys != tuple(keys):
            # The sender re-keyed (an epoch bump re-tiled the group):
            # references learned under the old key set would reconstruct
            # deltas with a stale sender identity, corrupting the
            # delivery condition.  The full encoding in hand is
            # authoritative — restart the reference table from it.
            entry = self._delta_rx[addr][sender] = _DeltaRx(tuple(keys))
        refs = entry.refs
        if seq in refs:
            refs.move_to_end(seq)
        refs[seq] = vector
        while len(refs) > self._delta_rx_cap:
            refs.popitem(last=False)

    def _request_resync(self, addr: Address) -> None:
        """Rate-limited out-of-band anti-entropy round after a reference
        miss (one per link per 50 ms, however many deltas bounce)."""
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return
        now = loop.time()
        if now - self._resync_last.get(addr, -1e18) < 0.05:
            return
        self._resync_last[addr] = now
        task = loop.create_task(self._heal_peer(addr))
        self._heal_tasks.add(task)
        task.add_done_callback(self._heal_tasks.discard)

    def _handle_digest(self, frontiers: Frontiers, addr: Address) -> None:
        if self._drop_if_evicted(addr, "digest"):
            return
        for data in self.store.missing_for(frontiers):
            # Reliable push: goes through the normal ack/retransmit path.
            self.session.push(addr, data)

    def _anti_entropy_targets(self) -> List[Address]:
        """Digest destinations: the full peer list in mesh mode, the
        bounded partial view in overlay mode (each node heals with
        O(view_size) peers; transitivity covers the rest of the swarm)."""
        if self.overlay is not None:
            return self.overlay.digest_targets(live_filter=self._overlay_live)
        return self._live_peers()

    async def _anti_entropy_loop(self) -> None:
        while True:
            # Jittered: uniform over [0.5, 1.5) x interval, mean
            # preserved.  A fixed timer would have a co-started swarm
            # digesting in lockstep — N^2 datagrams in one tick, idle
            # the rest of the interval.
            await asyncio.sleep(
                self._anti_entropy_interval
                * (0.5 + self._anti_entropy_rng.random())
            )
            frontiers = self.store.frontiers()
            for address in self._anti_entropy_targets():
                try:
                    await self.session.send_digest(address, frontiers)
                except Exception:
                    # A digest that fails to send is retried next round.
                    continue

    async def _liveness_loop(self) -> None:
        interval = self._liveness_policy.heartbeat_interval
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(interval)
            now = loop.time()
            self._heartbeat_count += 1
            beacon_targets = (
                self.overlay.addresses() if self.overlay is not None
                else list(self._peers)
            )
            for address in beacon_targets:
                # Heartbeats flow to quarantined peers too: that is what
                # resolves a mutual quarantine once the partition lifts.
                self.liveness.track(address, now)
                last = self.session.last_send_time(address)
                if last >= 0.0 and now - last < interval:
                    # Any recent datagram already proves we are alive;
                    # the beacon would be pure overhead on a busy link.
                    self._heartbeats_suppressed += 1
                    continue
                try:
                    await self.session.send_heartbeat(address, self._heartbeat_count)
                except Exception:
                    continue
            for address in self.liveness.sweep(loop.time()):
                if address in self._peers:
                    self.session.quarantine(address)
                    self.trace.emit(
                        "quarantine", ts=loop.time(), peer=str(address)
                    )
                else:
                    # Activity from a non-member primed the monitor;
                    # nothing to pause for it.
                    self.liveness.forget(address)

    def _handle_peer_activity(self, address: Address) -> None:
        # Called synchronously from the datagram path for *every*
        # datagram; must stay cheap.
        try:
            now = asyncio.get_running_loop().time()
        except RuntimeError:
            return
        if self.liveness.touch(address, now):
            self.session.resume(address)
            self.trace.emit("resume", ts=now, peer=str(address))
            # Heal immediately rather than waiting for the next
            # anti-entropy round: exchange digests both ways.
            task = asyncio.get_running_loop().create_task(self._heal_peer(address))
            self._heal_tasks.add(task)
            task.add_done_callback(self._heal_tasks.discard)

    async def _heal_peer(self, address: Address) -> None:
        try:
            await self.session.send_digest(address, self.store.frontiers())
        except Exception:
            # The regular anti-entropy loop retries soon anyway.
            pass

    def _handle_delivery(self, record: DeliveryRecord) -> None:
        message = record.message
        frontier = self._delivered_frontiers.get(str(message.sender))
        if frontier is None:
            frontier = self._delivered_frontiers[str(message.sender)] = _Frontier()
        frontier.add(message.seq)
        if self.journal is not None:
            if record.local:
                # WAL-before-wire: this runs inside endpoint.broadcast(),
                # before broadcast() puts the message on any link.
                self.journal.record_send(message.seq, self._codec.encode(message))
            else:
                self.journal.record_delivery(
                    str(message.sender),
                    message.seq,
                    message.timestamp.sender_keys,
                    alert=record.alert,
                )
            if self.journal.snapshot_due:
                clock = self.endpoint.clock
                detector_stats = self.endpoint.detector.stats
                self.journal.write_snapshot(
                    clock.snapshot(),
                    clock.send_count,
                    self.session.link_states(),
                    delta_refs=self._delta_refs_snapshot(),
                    detector=(detector_stats.checks, detector_stats.alerts),
                )
                self.trace.emit(
                    "journal_snapshot", ts=self._now(),
                    number=self.journal.snapshots_written,
                )
        self._deliveries.append(record)
        if self._on_delivery is not None:
            self._on_delivery(record)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def deliveries(self) -> List[DeliveryRecord]:
        """All deliveries so far, in order (local self-deliveries included)."""
        return list(self._deliveries)

    def delivered_frontiers(self) -> Frontiers:
        """Per-sender ``(contiguous, extras)`` coverage of everything this
        node has *delivered* (own broadcasts included).  This — not the
        store's received coverage — is what a join state transfer pairs
        with the clock vector."""
        return {
            sender: frontier.as_tuple()
            for sender, frontier in self._delivered_frontiers.items()
        }

    @property
    def stale_frames(self) -> int:
        """Frames dropped because their source was evicted from the view."""
        return self._stale_frames

    def delivered_payloads(self, include_local: bool = True) -> List[Any]:
        """Payloads in delivery order."""
        return [
            record.message.payload
            for record in self._deliveries
            if include_local or not record.local
        ]

    def _delta_refs_snapshot(
        self,
    ) -> Dict[Address, Dict[str, Tuple[int, Tuple[int, ...], Tuple[int, ...]]]]:
        """Newest known reference per (peer, sender), for the journal —
        enough to keep decoding a live sender's deltas across a restart."""
        out: Dict[Address, Dict[str, Tuple[int, Tuple[int, ...], Tuple[int, ...]]]] = {}
        for addr, senders in self._delta_rx.items():
            per: Dict[str, Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = {}
            for sender, entry in senders.items():
                if entry.refs:
                    seq = next(reversed(entry.refs))
                    per[sender] = (
                        seq,
                        tuple(int(v) for v in entry.refs[seq]),
                        tuple(int(k) for k in entry.keys),
                    )
            if per:
                out[addr] = per
        return out

    @property
    def decode_errors(self) -> int:
        """Datagrams dropped because they failed to decode."""
        return self._decode_errors

    @property
    def heartbeats_suppressed(self) -> int:
        """Heartbeat beacons skipped because the link had recent traffic."""
        return self._heartbeats_suppressed

    def stats(self) -> NodeStats:
        """One coherent :class:`NodeStats` snapshot of this node."""
        return NodeStats(
            node_id=str(self._node_id),
            endpoint=self.endpoint.stats,
            detector=self.endpoint.detector.stats,
            wire=self.session.total_stats(),
            store=self.store.stats,
            pending=self.endpoint.pending_count,
            decode_errors=self._decode_errors,
            quarantines=self.liveness.quarantines if self.liveness else 0,
            resumes=self.liveness.resumes if self.liveness else 0,
            snapshot=self.metrics.snapshot(),
        )

    def transport_stats(self, address: Optional[Address] = None) -> TransportStats:
        """Wire counters: one peer's, or all peers merged when ``None``."""
        if address is not None:
            return self.session.stats_for(address)
        return self.session.total_stats()

    def transport_stats_by_peer(self) -> Dict[Address, TransportStats]:
        """Per-peer wire counters."""
        return self.session.all_stats()
