"""A deployable causal broadcast node: endpoint + codec + reliable session.

This is the networked counterpart of the simulator's node — the piece the
ROADMAP's "runnable networked system" needs.  It stacks, bottom-up:

* any :class:`~repro.net.peer.Transport` (UDP, the in-process bus, or a
  fault-injecting wrapper),
* a :class:`~repro.net.session.ReliableSession` (acks, NACK-driven
  retransmission, backoff, backpressure),
* a :class:`MessageStore` keeping recently seen messages by their causal
  ``(sender, seq)`` id and answering anti-entropy digests,
* the :class:`~repro.core.protocol.CausalBroadcastEndpoint` (Algorithms
  1–2 + detector) and the binary :class:`~repro.core.codec.MessageCodec`.

Retransmission handles the common case (a datagram lost on one link);
the periodic anti-entropy exchange handles the rest: each node digests
its per-sender frontiers to every peer, and a peer that holds messages
outside that digest pushes them back over the reliable session.  Because
every stored message is relayed on request, anti-entropy also heals
*transitive* gaps — a message from A can reach C via B even if the A→C
link dropped every copy.

Construct nodes with :func:`repro.api.create_node` rather than by hand.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Callable, Deque, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.core.clocks import EntryVectorClock
from repro.core.codec import MessageCodec
from repro.core.detector import DeliveryErrorDetector
from repro.core.errors import ConfigurationError
from repro.core.protocol import CausalBroadcastEndpoint, DeliveryRecord, Message
from repro.net.peer import Transport
from repro.net.session import ReliableSession, RetransmitPolicy, TransportStats

__all__ = ["MessageStore", "ReliableCausalNode"]

Address = Hashable
DeliveryHandler = Callable[[DeliveryRecord], None]
Frontiers = Dict[str, Tuple[int, Tuple[int, ...]]]


class MessageStore:
    """Bounded store of encoded messages keyed by causal ``(sender, seq)``.

    Tracks, per sender, the *contiguous frontier* (every seq up to it is
    known) plus any out-of-order extras — exactly the shape of the
    anti-entropy digest.  Old message *bytes* are evicted FIFO beyond
    ``limit`` (the frontier bookkeeping stays, so digests remain
    truthful; evicted messages simply can no longer be served).
    """

    def __init__(self, limit: int = 8192) -> None:
        if limit <= 0:
            raise ConfigurationError(f"store limit must be positive, got {limit}")
        self._limit = limit
        self._data: Dict[Tuple[str, int], bytes] = {}
        self._order: Deque[Tuple[str, int]] = deque()
        self._contiguous: Dict[str, int] = {}
        self._extras: Dict[str, set] = {}

    def __len__(self) -> int:
        return len(self._data)

    def add(self, sender: str, seq: int, data: bytes) -> bool:
        """Record one encoded message; returns True when it was new."""
        if self.knows(sender, seq):
            return False
        self._data[(sender, seq)] = data
        self._order.append((sender, seq))
        extras = self._extras.setdefault(sender, set())
        extras.add(seq)
        frontier = self._contiguous.get(sender, 0)
        while frontier + 1 in extras:
            frontier += 1
            extras.discard(frontier)
        self._contiguous[sender] = frontier
        while len(self._data) > self._limit:
            evicted = self._order.popleft()
            self._data.pop(evicted, None)
        return True

    def knows(self, sender: str, seq: int) -> bool:
        """Whether this id was ever recorded (bytes may be evicted)."""
        if seq <= self._contiguous.get(sender, 0):
            return True
        return seq in self._extras.get(sender, ())

    def get(self, sender: str, seq: int) -> Optional[bytes]:
        """The stored encoding, or None if unknown or evicted."""
        return self._data.get((sender, seq))

    def frontiers(self) -> Frontiers:
        """Per-sender ``(contiguous, extras)`` — the anti-entropy digest."""
        return {
            sender: (
                self._contiguous.get(sender, 0),
                tuple(sorted(self._extras.get(sender, ()))),
            )
            for sender in set(self._contiguous) | set(self._extras)
        }

    def missing_for(self, remote: Frontiers, limit: int = 256) -> Iterator[bytes]:
        """Stored encodings the remote digest does not cover (oldest first)."""
        served = 0
        for sender, seq in self._order:
            if served >= limit:
                return
            contiguous, extras = remote.get(sender, (0, ()))
            if seq <= contiguous or seq in extras:
                continue
            data = self._data.get((sender, seq))
            if data is not None:
                served += 1
                yield data


class ReliableCausalNode:
    """One networked participant with reliable dissemination.

    The public surface mirrors :class:`~repro.net.peer.AsyncCausalPeer`
    (broadcast / add_peer / deliveries) plus lifecycle (:meth:`start`,
    :meth:`close`) and wire observability (:meth:`transport_stats`).

    Args:
        node_id: this node's identity (the message sender id).
        clock: its logical clock (any member of the (n, r, k) family).
        transport: datagram substrate; the node's session owns it.
        detector: optional Algorithm 4/5 alert check.
        codec: message wire format (binary + JSON payloads by default).
        on_delivery: synchronous callback per delivery.
        policy: retransmission tuning (see :class:`RetransmitPolicy`).
        anti_entropy_interval: seconds between digest rounds; 0 disables
            the periodic exchange (retransmission-only mode).
        store_limit: bound on the recent-messages store.
        max_pending: optional safety bound on the endpoint's pending queue.
    """

    def __init__(
        self,
        node_id: Hashable,
        clock: EntryVectorClock,
        transport: Transport,
        detector: Optional[DeliveryErrorDetector] = None,
        codec: Optional[MessageCodec] = None,
        on_delivery: Optional[DeliveryHandler] = None,
        policy: Optional[RetransmitPolicy] = None,
        anti_entropy_interval: float = 0.5,
        store_limit: int = 8192,
        max_pending: Optional[int] = None,
    ) -> None:
        if anti_entropy_interval < 0:
            raise ConfigurationError(
                f"anti_entropy_interval must be >= 0, got {anti_entropy_interval}"
            )
        self._node_id = node_id
        self._codec = codec if codec is not None else MessageCodec()
        self._on_delivery = on_delivery
        self._peers: List[Address] = []
        self._deliveries: List[DeliveryRecord] = []
        self._decode_errors = 0
        self._anti_entropy_interval = anti_entropy_interval
        self._anti_entropy_task: Optional[asyncio.Task] = None
        self.store = MessageStore(limit=store_limit)
        self.endpoint = CausalBroadcastEndpoint(
            process_id=str(node_id),
            clock=clock,
            detector=detector,
            deliver_callback=self._handle_delivery,
            max_pending=max_pending,
        )
        self.session = ReliableSession(
            transport,
            on_message=self._handle_wire_message,
            on_digest=self._handle_digest,
            policy=policy,
        )
        self._transport = transport

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "ReliableCausalNode":
        """Start the retransmit timer and the anti-entropy loop."""
        self.session.start()
        if self._anti_entropy_interval > 0 and self._anti_entropy_task is None:
            self._anti_entropy_task = asyncio.get_running_loop().create_task(
                self._anti_entropy_loop()
            )
        return self

    async def close(self) -> None:
        """Stop background tasks and release the transport."""
        if self._anti_entropy_task is not None:
            self._anti_entropy_task.cancel()
            self._anti_entropy_task = None
        await self.session.close()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def add_peer(self, address: Address) -> None:
        """Start broadcasting to ``address`` (idempotent)."""
        if address not in self._peers:
            self._peers.append(address)

    def remove_peer(self, address: Address) -> None:
        """Stop broadcasting to ``address`` (missing is fine)."""
        if address in self._peers:
            self._peers.remove(address)

    @property
    def peers(self) -> Sequence[Address]:
        """Addresses this node currently broadcasts to."""
        return tuple(self._peers)

    @property
    def node_id(self) -> Hashable:
        """This node's identity."""
        return self._node_id

    @property
    def transport(self) -> Transport:
        """The underlying datagram transport."""
        return self._transport

    @property
    def local_address(self) -> Address:
        """The transport's bound address (where peers should send).

        Raises :class:`ConfigurationError` for transports that have no
        notion of a bound address.
        """
        address = getattr(self._transport, "local_address", None)
        if address is None:
            address = getattr(self._transport, "address", None)
        if address is None:
            raise ConfigurationError(
                f"{type(self._transport).__name__} exposes no local address"
            )
        return address

    # ------------------------------------------------------------------
    # sending / receiving
    # ------------------------------------------------------------------

    async def broadcast(self, payload: Any = None) -> Message:
        """Timestamp, self-deliver, store, and reliably send to all peers."""
        message = self.endpoint.broadcast(payload)
        data = self._codec.encode(message)
        self.store.add(str(message.sender), message.seq, data)
        await asyncio.gather(
            *(self.session.send(address, data) for address in self._peers)
        )
        return message

    def _handle_wire_message(self, data: bytes, addr: Address) -> None:
        try:
            message = self._codec.decode(data)
        except Exception:
            # A malformed datagram must never take the node down.
            self._decode_errors += 1
            return
        self.store.add(str(message.sender), message.seq, data)
        self.endpoint.on_receive(message)

    def _handle_digest(self, frontiers: Frontiers, addr: Address) -> None:
        for data in self.store.missing_for(frontiers):
            # Reliable push: goes through the normal ack/retransmit path.
            self.session.push(addr, data)

    async def _anti_entropy_loop(self) -> None:
        while True:
            await asyncio.sleep(self._anti_entropy_interval)
            frontiers = self.store.frontiers()
            for address in list(self._peers):
                try:
                    await self.session.send_digest(address, frontiers)
                except Exception:
                    # A digest that fails to send is retried next round.
                    continue

    def _handle_delivery(self, record: DeliveryRecord) -> None:
        self._deliveries.append(record)
        if self._on_delivery is not None:
            self._on_delivery(record)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def deliveries(self) -> List[DeliveryRecord]:
        """All deliveries so far, in order (local self-deliveries included)."""
        return list(self._deliveries)

    def delivered_payloads(self, include_local: bool = True) -> List[Any]:
        """Payloads in delivery order."""
        return [
            record.message.payload
            for record in self._deliveries
            if include_local or not record.local
        ]

    @property
    def decode_errors(self) -> int:
        """Datagrams dropped because they failed to decode."""
        return self._decode_errors

    def transport_stats(self, address: Optional[Address] = None) -> TransportStats:
        """Wire counters: one peer's, or all peers merged when ``None``."""
        if address is not None:
            return self.session.stats_for(address)
        return self.session.total_stats()

    def transport_stats_by_peer(self) -> Dict[Address, TransportStats]:
        """Per-peer wire counters."""
        return self.session.all_stats()
