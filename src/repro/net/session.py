"""Reliable delivery over an unreliable datagram transport.

The paper assumes the dissemination substrate eventually gets every
message to every process (its Algorithm 5 explicitly tolerates *late*
messages, not permanently lost ones).  Plain UDP does not provide that,
so this module adds the classic reliability machinery between a
:class:`~repro.net.peer.Transport` and the causal layer:

* **per-peer sequence tracking** — every datagram sent to a peer carries
  a per-link sequence number (independent of the causal ``(sender, seq)``
  ids, which identify *messages*, not transmissions);
* **positive acks** — receivers acknowledge cumulatively plus a bounded
  selective-ack list, so one ACK datagram confirms many frames;
* **NACK-driven retransmission** — a receiver that observes a sequence
  gap immediately requests the missing frames instead of waiting for the
  sender's timer;
* **timer-driven retransmission** with exponential backoff and jitter,
  bounded by ``max_retries`` (after which the frame is *dropped* and
  counted — anti-entropy, one layer up, recovers the message);
* **a bounded send buffer with backpressure** — ``send`` suspends when a
  peer has too many unacknowledged frames in flight, so a dead peer
  cannot make the sender accumulate unbounded state;
* **frame coalescing** — outgoing frames queue per peer and flush as one
  BATCH datagram when they fill the ``coalesce_mtu`` budget, when the
  ``flush_interval`` timer fires, or on an explicit :meth:`flush`;
  retransmissions, digests and heartbeats ride the same queue, so a
  steady stream costs a fraction of the datagrams (and syscalls);
* **delayed cumulative acks with piggybacking** — received DATA is
  acknowledged once per ``ack_delay`` window with a single cumulative
  ACK, and a pending ack is folded into the next outgoing batch's header
  instead of costing its own datagram, so bidirectional steady-state
  traffic sends no standalone ACKs at all;
* **anti-entropy plumbing** — digest frames (per-sender ``(sender, seq)``
  frontiers) are encoded/dispatched here; deciding *what* is missing is
  the message-store's job (see :mod:`repro.net.node`);
* **liveness plumbing** — HEARTBEAT frames are sent/counted here, every
  incoming datagram is reported through ``on_peer_activity``, and a peer
  the failure detector declares dead can be **quarantined**: its pending
  retransmissions are dropped (counted in ``quarantine_drops``) and its
  backpressure budget released, so a dead peer burns neither timers nor
  sender memory.  :meth:`resume` re-arms the peer; anti-entropy heals
  whatever was dropped while it was away (see :mod:`repro.net.liveness`);
* **crash recovery plumbing** — per-link sequence state can be exported
  (:meth:`link_states`) and re-imported (:meth:`restore_peer`) by the
  journal, and ``on_link_seq`` fires *before* a fresh sequence number
  first hits the wire so the journal can lease seq ranges ahead of use
  (see :mod:`repro.net.journal`).

Everything observable is surfaced through per-peer
:class:`TransportStats` (sends, retransmits, nacks, drops, a smoothed
RTT estimate) so benchmarks and soak tests can watch the wire.

The session is transport-agnostic: it runs over real UDP
(:class:`~repro.net.udp.UdpTransport`), the in-process bus
(:class:`~repro.net.bus.LocalAsyncBus`) or a fault-injecting wrapper
(:class:`~repro.net.faults.FaultyTransport`).
"""

from __future__ import annotations

import asyncio
import random
from collections import OrderedDict
from dataclasses import dataclass, fields
from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple

from repro.core.codec import (
    AckFrame,
    BatchFrame,
    CodecError,
    DataFrame,
    DigestFrame,
    Frame,
    FrameCodec,
    HeartbeatFrame,
    JoinAckFrame,
    JoinFrame,
    LeaveFrame,
    NackFrame,
    RelayFrame,
    ViewFrame,
    varint_size,
)
from repro.core.errors import ConfigurationError
from repro.net.peer import Transport

__all__ = ["RetransmitPolicy", "TransportStats", "ReliableSession"]

Address = Hashable
MessageHandler = Callable[[bytes, Address], None]
DigestHandler = Callable[[Dict[str, Tuple[int, Tuple[int, ...]]], Address], None]
ActivityHandler = Callable[[Address], None]
LinkSeqHandler = Callable[[Address, int], None]
MembershipHandler = Callable[[Frame, Address], None]
RelayHandler = Callable[[RelayFrame, Address], None]

# Acked-at-first-send RTT smoothing (Jacobson/Karels constants).
_RTT_ALPHA = 0.125
_RTT_BETA = 0.25


@dataclass(frozen=True)
class RetransmitPolicy:
    """Tuning knobs of the retransmission state machine.

    Attributes:
        initial_timeout: first retransmit timeout (seconds) before any
            RTT estimate exists; also the floor of the adaptive RTO.
        backoff_factor: multiplier applied to a frame's timeout after
            every retransmission (exponential backoff).
        max_timeout: ceiling on the per-frame timeout.
        jitter: retransmit times are spread by up to this fraction of the
            timeout, so synchronized peers do not burst together.
        max_retries: retransmissions per frame before it is dropped and
            left to anti-entropy (0 disables retransmission entirely).
        send_buffer: maximum unacknowledged frames per peer; ``send``
            applies backpressure (suspends) beyond it.
        tick_interval: period of the retransmit scan (seconds).
        nack_interval: minimum delay between two NACKs for the same
            missing frame (seconds).
        coalesce_mtu: per-datagram budget for frame coalescing; queued
            frames flush as one BATCH datagram when they fill it.  0
            disables coalescing entirely (every frame is its own
            datagram — the PR-1 wire behaviour).
        flush_interval: how long a queued frame may wait for company
            before the queue flushes anyway (seconds).
        ack_delay: delay before acknowledging received DATA, so one
            cumulative ACK covers a burst and outgoing batches can
            piggyback it.  0 restores ack-per-frame.
    """

    initial_timeout: float = 0.05
    backoff_factor: float = 2.0
    max_timeout: float = 2.0
    jitter: float = 0.25
    max_retries: int = 10
    send_buffer: int = 1024
    tick_interval: float = 0.01
    nack_interval: float = 0.04
    coalesce_mtu: int = 1400
    flush_interval: float = 0.001
    ack_delay: float = 0.005

    def __post_init__(self) -> None:
        if self.initial_timeout <= 0:
            raise ConfigurationError(f"initial_timeout must be > 0, got {self.initial_timeout}")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.max_timeout < self.initial_timeout:
            raise ConfigurationError("max_timeout must be >= initial_timeout")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(f"jitter must lie in [0, 1], got {self.jitter}")
        if self.max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.send_buffer <= 0:
            raise ConfigurationError(f"send_buffer must be positive, got {self.send_buffer}")
        if self.tick_interval <= 0:
            raise ConfigurationError(f"tick_interval must be > 0, got {self.tick_interval}")
        if self.nack_interval < 0:
            raise ConfigurationError(f"nack_interval must be >= 0, got {self.nack_interval}")
        if self.coalesce_mtu < 0:
            raise ConfigurationError(f"coalesce_mtu must be >= 0, got {self.coalesce_mtu}")
        if self.flush_interval <= 0:
            raise ConfigurationError(
                f"flush_interval must be > 0, got {self.flush_interval}"
            )
        if self.ack_delay < 0:
            raise ConfigurationError(f"ack_delay must be >= 0, got {self.ack_delay}")


@dataclass
class TransportStats:
    """Per-peer wire counters (one instance per remote address).

    Attributes:
        data_sent: first transmissions of DATA frames.
        retransmits: re-transmissions (timer- or NACK-driven).
        drops: frames abandoned after ``max_retries`` (anti-entropy's job).
        data_received: new DATA frames received (duplicates excluded).
        duplicates: DATA frames received more than once.
        acks_sent / acks_received: ACK frame counts.
        nacks_sent / nacks_received: NACK frame counts.
        digests_sent / digests_received: anti-entropy digest counts.
        heartbeats_sent / heartbeats_received: liveness beacon counts.
        quarantine_drops: pending frames discarded when the failure
            detector quarantined this peer (anti-entropy re-sends the
            messages they carried once the peer returns).
        datagrams_sent / datagrams_received: transport-level sends and
            arrivals (one BATCH counts once, however many frames it
            carries; raw frame-less datagrams count too).
        bytes_sent / bytes_received: wire bytes of those datagrams.
        frames_sent / frames_received: session frames crossing the wire
            (inner frames of a batch counted individually), so frames
            per datagram is ``frames_sent / datagrams_sent``.
        batches_sent / batches_received: BATCH container datagrams.
        acks_piggybacked: acknowledgements that rode an outgoing batch
            instead of costing a standalone datagram (subset of
            ``acks_sent``; standalone = sent − piggybacked).
        delta_sent / delta_received: messages that crossed this link in
            the O(K) DELTA encoding (counted by the node layer).
        full_sent / full_received: messages in the full-vector encoding.
        delta_ref_misses: delta messages dropped because the reference
            vector was unknown (e.g. after a crash restart); each miss
            triggers an anti-entropy resync that re-delivers them full.
        control_sent / control_received: membership control frames
            (VIEW/JOIN/JOIN_ACK/LEAVE) crossing this link.
        relay_sent / relay_received: overlay RELAY envelopes crossing
            this link (fire-and-forget gossip pushes; anti-entropy is
            the loss backstop, so they are never retransmitted).
        rtt: smoothed round-trip estimate in seconds (None until the
            first clean ack of a never-retransmitted frame).
        rtt_samples: clean RTT samples folded into the estimate — the
            weight of ``rtt`` when merging across peers.
        rtt_min / rtt_max: extreme raw samples (None until the first),
            so a merged view preserves the spread the mean hides.
    """

    data_sent: int = 0
    retransmits: int = 0
    drops: int = 0
    data_received: int = 0
    duplicates: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    nacks_sent: int = 0
    nacks_received: int = 0
    digests_sent: int = 0
    digests_received: int = 0
    heartbeats_sent: int = 0
    heartbeats_received: int = 0
    quarantine_drops: int = 0
    datagrams_sent: int = 0
    datagrams_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    frames_sent: int = 0
    frames_received: int = 0
    batches_sent: int = 0
    batches_received: int = 0
    acks_piggybacked: int = 0
    delta_sent: int = 0
    delta_received: int = 0
    full_sent: int = 0
    full_received: int = 0
    delta_ref_misses: int = 0
    control_sent: int = 0
    control_received: int = 0
    relay_sent: int = 0
    relay_received: int = 0
    rtt: Optional[float] = None
    rtt_samples: int = 0
    rtt_min: Optional[float] = None
    rtt_max: Optional[float] = None

    def merge(self, other: "TransportStats") -> "TransportStats":
        """Elementwise sum, for totals.

        The merged ``rtt`` is the sample-count-weighted mean of the known
        estimates: a peer whose estimate rests on one early ack must not
        pull the aggregate as hard as a peer with thousands of samples
        behind it (the unweighted average used to let one idle link skew
        the fleet view).  An estimate that somehow exists with zero
        recorded samples still counts with weight one rather than
        vanishing.  ``rtt_min``/``rtt_max`` take the elementwise extreme
        so the spread survives aggregation.
        """
        merged = TransportStats()
        estimates = [
            (estimate, max(samples, 1))
            for estimate, samples in (
                (self.rtt, self.rtt_samples),
                (other.rtt, other.rtt_samples),
            )
            if estimate is not None
        ]
        if estimates:
            weight = sum(samples for _, samples in estimates)
            merged.rtt = sum(e * s for e, s in estimates) / weight
        mins = [m for m in (self.rtt_min, other.rtt_min) if m is not None]
        merged.rtt_min = min(mins) if mins else None
        maxes = [m for m in (self.rtt_max, other.rtt_max) if m is not None]
        merged.rtt_max = max(maxes) if maxes else None
        for stats_field in fields(TransportStats):
            if stats_field.name in ("rtt", "rtt_min", "rtt_max"):
                continue
            setattr(
                merged,
                stats_field.name,
                getattr(self, stats_field.name) + getattr(other, stats_field.name),
            )
        return merged


@dataclass(slots=True)
class _Pending:
    """One unacknowledged frame awaiting ack or retransmission."""

    data: bytes
    first_sent: float
    next_due: float
    timeout: float
    sends: int = 1


class _PeerState:
    """Everything the session tracks about one remote address."""

    def __init__(self, policy: RetransmitPolicy) -> None:
        self.next_seq = 1
        self.unacked: "OrderedDict[int, _Pending]" = OrderedDict()
        self.space = asyncio.Event()
        self.space.set()
        self.recv_cumulative = 0
        self.recv_out_of_order: Set[int] = set()
        self.nack_last: Dict[int, float] = {}
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.stats = TransportStats()
        self.quarantined = False
        # Coalescing outbox: encoded frames awaiting a BATCH flush, and
        # their wire cost (frame bytes + per-frame length varints).
        self.outbox: List[bytes] = []
        self.outbox_bytes = 0
        self.flush_handle: Optional[asyncio.TimerHandle] = None
        # Delayed-ack state: one timer per window; the ack itself is
        # built at emission time so it is always maximally cumulative.
        self.ack_pending = False
        self.ack_handle: Optional[asyncio.TimerHandle] = None
        # Highest cumulative ack received from this peer (what the node
        # layer keys its delta-encoding references on).
        self.tx_acked = 0
        # Event-loop time of the last datagram sent to this peer (lets
        # the liveness layer skip heartbeats when traffic already flows).
        self.last_send = -1.0
        self._policy = policy

    def rto(self) -> float:
        """Current retransmission timeout (adaptive once RTT is known)."""
        if self.srtt is None:
            return self._policy.initial_timeout
        rto = self.srtt + 4.0 * (self.rttvar or 0.0)
        return min(max(rto, self._policy.initial_timeout), self._policy.max_timeout)

    def observe_rtt(self, sample: float) -> None:
        """Fold one clean (never-retransmitted) RTT sample in."""
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = (1 - _RTT_BETA) * self.rttvar + _RTT_BETA * abs(self.srtt - sample)
            self.srtt = (1 - _RTT_ALPHA) * self.srtt + _RTT_ALPHA * sample
        self.stats.rtt = self.srtt
        self.stats.rtt_samples += 1
        if self.stats.rtt_min is None or sample < self.stats.rtt_min:
            self.stats.rtt_min = sample
        if self.stats.rtt_max is None or sample > self.stats.rtt_max:
            self.stats.rtt_max = sample

    def note_received(self, seq: int) -> bool:
        """Record an incoming DATA seq; True when it was new."""
        if seq <= self.recv_cumulative or seq in self.recv_out_of_order:
            return False
        self.recv_out_of_order.add(seq)
        while self.recv_cumulative + 1 in self.recv_out_of_order:
            self.recv_cumulative += 1
            self.recv_out_of_order.discard(self.recv_cumulative)
            self.nack_last.pop(self.recv_cumulative, None)
        return True

    def missing_seqs(self, limit: int = 64) -> List[int]:
        """Gaps below the highest out-of-order seq received."""
        if not self.recv_out_of_order:
            return []
        highest = max(self.recv_out_of_order)
        gaps = []
        for seq in range(self.recv_cumulative + 1, highest):
            if seq not in self.recv_out_of_order:
                gaps.append(seq)
                if len(gaps) >= limit:
                    break
        return gaps


class ReliableSession:
    """Ack/retransmit/anti-entropy machinery over one transport.

    Args:
        transport: the datagram substrate; the session installs itself as
            its receiver.
        on_message: upcall ``(payload, addr)`` invoked exactly once per
            *new* DATA frame (duplicates are absorbed here).  Datagrams
            that are not session frames are passed through unchanged, so
            a session interoperates with frame-less senders.
        on_digest: upcall ``(frontiers, addr)`` for anti-entropy digests;
            the owner answers by re-sending whatever the digest lacks.
        on_peer_activity: upcall ``(addr)`` for every incoming datagram,
            whatever its kind — the liveness monitor's evidence stream.
        on_link_seq: upcall ``(addr, seq)`` invoked *before* a fresh DATA
            sequence number is first transmitted, so a journal can lease
            seq ranges ahead of use (write-ahead ordering).
        on_membership: upcall ``(frame, addr)`` for membership control
            frames (VIEW/JOIN/JOIN_ACK/LEAVE); without it they are
            counted and dropped.
        on_relay: upcall ``(frame, addr)`` for overlay RELAY envelopes;
            without it they are counted and dropped (a mesh-mode node
            receiving strays from an overlay peer stays unaffected —
            anti-entropy still carries the messages).
        data_gate: optional admission predicate for the data plane.
            While it returns False, inbound DATA and DIGEST frames are
            dropped *unacknowledged* (the sender's retransmit timer
            keeps them alive); membership control and pure wire frames
            still flow.  A node mid-JOIN uses this so no state reaches
            its store before the handshake's state transfer lands.
        policy: retransmission tuning; defaults to :class:`RetransmitPolicy`.
        seed: seeds the jitter generator (jitter needs no determinism,
            but a fixed seed keeps tests reproducible).
    """

    def __init__(
        self,
        transport: Transport,
        on_message: MessageHandler,
        on_digest: Optional[DigestHandler] = None,
        on_peer_activity: Optional[ActivityHandler] = None,
        on_link_seq: Optional[LinkSeqHandler] = None,
        on_membership: Optional[MembershipHandler] = None,
        on_relay: Optional[RelayHandler] = None,
        data_gate: Optional[Callable[[], bool]] = None,
        policy: Optional[RetransmitPolicy] = None,
        seed: int = 0,
    ) -> None:
        self._transport = transport
        self._on_message = on_message
        self._on_digest = on_digest
        self._on_peer_activity = on_peer_activity
        self._on_link_seq = on_link_seq
        self._on_membership = on_membership
        self._on_relay = on_relay
        self._data_gate = data_gate
        self._policy = policy if policy is not None else RetransmitPolicy()
        self._codec = FrameCodec()
        self._random = random.Random(seed)
        self._peers: Dict[Address, _PeerState] = {}
        self._tick_task: Optional[asyncio.Task] = None
        self._tasks: Set[asyncio.Task] = set()
        self._closed = False
        self.frame_errors = 0
        self.gated_frames = 0
        self._rtt_histogram = None  # set by bind_metrics()
        # Batched-transport fast paths, detected on the transport's
        # *class* deliberately: FaultyTransport proxies unknown attribute
        # reads to its inner transport via __getattr__, and resolving
        # send_now through the proxy would silently bypass fault
        # injection.  A wrapper that wants the fast path must define the
        # methods itself.
        transport_cls = type(transport)
        self._transport_send_now = (
            transport.send_now if hasattr(transport_cls, "send_now") else None
        )
        transport.set_receiver(self._handle_datagram)
        if hasattr(transport_cls, "set_batch_receiver"):
            transport.set_batch_receiver(self._handle_datagram_batch)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the retransmit timer (requires a running event loop)."""
        if self._tick_task is None:
            self._tick_task = asyncio.get_running_loop().create_task(self._tick_loop())

    async def close(self) -> None:
        """Stop timers, cancel in-flight sends, close the transport."""
        self._closed = True
        if self._tick_task is not None:
            self._tick_task.cancel()
            self._tick_task = None
        for state in self._peers.values():
            self._disarm(state)
        for task in list(self._tasks):
            task.cancel()
        self._tasks.clear()
        await self._transport.close()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Attach a metrics registry (``repro.obs``).

        Every integer field of :class:`TransportStats` becomes a
        ``repro_wire_<field>_total`` counter, synced from
        :meth:`total_stats` by a pull collector at snapshot time — the
        per-datagram paths keep mutating the plain dataclass they always
        mutated, and the registry mirrors it exactly (the differential
        suite holds the two views equal).  The only push instrument is
        the raw RTT-sample histogram, one observe per clean ack.
        """
        self._rtt_histogram = registry.histogram("repro_wire_rtt_seconds")
        skip = ("rtt", "rtt_min", "rtt_max")
        counters = {
            stats_field.name: registry.counter(f"repro_wire_{stats_field.name}_total")
            for stats_field in fields(TransportStats)
            if stats_field.name not in skip
        }
        rtt_mean = registry.gauge("repro_wire_rtt_mean_seconds")
        peer_count = registry.gauge("repro_wire_peers")

        def collect() -> None:
            total = self.total_stats()
            for name, counter in counters.items():
                counter.set(getattr(total, name))
            rtt_mean.set(total.rtt if total.rtt is not None else 0.0)
            peer_count.set(len(self._peers))

        registry.register_collector(collect)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def stats_for(self, address: Address) -> TransportStats:
        """Per-peer wire counters (zeros for a never-seen address)."""
        state = self._peers.get(address)
        return state.stats if state is not None else TransportStats()

    def all_stats(self) -> Dict[Address, TransportStats]:
        """Snapshot of every peer's counters."""
        return {address: state.stats for address, state in self._peers.items()}

    def total_stats(self) -> TransportStats:
        """All peers' counters merged into one."""
        total = TransportStats()
        for state in self._peers.values():
            total = total.merge(state.stats)
        return total

    def unacked_count(self, address: Address) -> int:
        """Frames awaiting acknowledgement from ``address``."""
        state = self._peers.get(address)
        return len(state.unacked) if state is not None else 0

    def acked_cumulative(self, address: Address) -> int:
        """Highest cumulative link seq ``address`` has acknowledged.

        Monotone per link; the node layer keys its delta-encoding
        references on it (a message the peer acked is a vector the peer
        is guaranteed to hold).
        """
        state = self._peers.get(address)
        return state.tx_acked if state is not None else 0

    def peer_stats(self, address: Address) -> TransportStats:
        """Live (mutable) counters for ``address``, created on demand.

        Unlike :meth:`stats_for` this never hands back a detached zero
        object, so upper layers can count on it directly (the node layer
        records delta/full encoding choices here).
        """
        return self._peer(address).stats

    def last_send_time(self, address: Address) -> float:
        """Event-loop time of the last datagram sent to ``address``
        (-1.0 before the first); lets liveness suppress heartbeats on
        links that already carry traffic."""
        state = self._peers.get(address)
        return state.last_send if state is not None else -1.0

    @property
    def policy(self) -> RetransmitPolicy:
        """The active retransmission policy."""
        return self._policy

    @property
    def codec_counters(self):
        """The frame codec's allocation/copy tallies
        (:class:`repro.core.codec.CodecCounters`)."""
        return self._codec.counters

    def link_states(self) -> Dict[Address, Tuple[int, int, Tuple[int, ...]]]:
        """Per-peer link-sequence state for journal snapshots.

        Maps each address to ``(tx_next, rx_cumulative, rx_out_of_order)``.
        """
        return {
            address: (
                state.next_seq,
                state.recv_cumulative,
                tuple(sorted(state.recv_out_of_order)),
            )
            for address, state in self._peers.items()
        }

    # ------------------------------------------------------------------
    # peer lifecycle (quarantine / crash recovery / purge)
    # ------------------------------------------------------------------

    def quarantine(self, address: Address) -> int:
        """Park an unresponsive peer; returns the pending frames dropped.

        Its unacked buffer is discarded (counted in ``quarantine_drops``;
        anti-entropy re-delivers those messages on resume), blocked
        senders are released, and the retransmit timer skips it — a dead
        peer stops costing memory and wire traffic.  Idempotent.
        """
        state = self._peers.get(address)
        if state is None or state.quarantined:
            return 0
        state.quarantined = True
        dropped = len(state.unacked)
        state.stats.quarantine_drops += dropped
        state.unacked.clear()
        self._disarm(state)
        state.space.set()
        return dropped

    def resume(self, address: Address) -> bool:
        """Lift a quarantine (the peer showed signs of life); True if it
        was actually quarantined."""
        state = self._peers.get(address)
        if state is None or not state.quarantined:
            return False
        state.quarantined = False
        return True

    def is_quarantined(self, address: Address) -> bool:
        """Whether ``address`` is currently quarantined."""
        state = self._peers.get(address)
        return state is not None and state.quarantined

    def forget(self, address: Address) -> bool:
        """Purge all per-peer state for ``address`` (membership removal).

        Drops pending retransmissions, receive bookkeeping and stats, and
        wakes any sender blocked on the peer's backpressure (their
        in-flight frames complete against the discarded state and are
        never retransmitted).  Returns True when state existed.
        """
        state = self._peers.pop(address, None)
        if state is None:
            return False
        state.unacked.clear()
        self._disarm(state)
        state.space.set()
        return True

    def restore_peer(
        self,
        address: Address,
        next_seq: int = 1,
        recv_cumulative: int = 0,
        recv_out_of_order: Tuple[int, ...] = (),
    ) -> None:
        """Re-import journaled link state after a crash restart.

        ``next_seq`` comes from the journal's seq lease, guaranteeing a
        restarted node never reuses a link sequence number its peer saw
        before the crash.  Receive-side state may lag the true pre-crash
        value (it is only snapshotted periodically); the regression is
        harmless — re-accepted duplicates are absorbed by the causal
        layer's ``(sender, seq)`` duplicate suppression.
        """
        state = self._peer(address)
        state.next_seq = max(state.next_seq, int(next_seq))
        state.recv_cumulative = max(state.recv_cumulative, int(recv_cumulative))
        state.recv_out_of_order.update(
            int(seq) for seq in recv_out_of_order if int(seq) > state.recv_cumulative
        )

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    @staticmethod
    def data_body(payload: bytes) -> bytes:
        """Pre-pack the seq-independent part of a DATA frame once.

        A broadcast fan-out sends the same payload to every peer; only
        the per-link seq in the header differs.  The node layer builds
        this body once per broadcast and passes it to every
        :meth:`send`, so an N-peer fan-out packs the payload a single
        time instead of N times.
        """
        return FrameCodec.encode_data_body(payload)

    async def send(
        self,
        destination: Address,
        payload: bytes,
        shared_body: Optional[bytes] = None,
    ) -> int:
        """Reliably send ``payload``; returns the link sequence number.

        Suspends (backpressure) while ``destination`` already has
        ``policy.send_buffer`` unacknowledged frames in flight.
        ``shared_body`` is an optional pre-packed :meth:`data_body` of
        the same payload, shared across a fan-out.
        """
        state = self._peer(destination)
        while len(state.unacked) >= self._policy.send_buffer:
            state.space.clear()
            await state.space.wait()
        seq = state.next_seq
        state.next_seq += 1
        if self._on_link_seq is not None:
            # Write-ahead: the journal leases the seq before it hits the wire.
            self._on_link_seq(destination, seq)
        if shared_body is None:
            shared_body = FrameCodec.encode_data_body(payload)
        frame = FrameCodec.encode_data_with_body(seq, shared_body)
        now = asyncio.get_running_loop().time()
        timeout = state.rto()
        state.unacked[seq] = _Pending(
            data=frame, first_sent=now, next_due=now + self._jittered(timeout), timeout=timeout
        )
        state.stats.data_sent += 1
        self._transmit(destination, state, frame)
        return seq

    def push(self, destination: Address, payload: bytes) -> None:
        """Schedule a reliable :meth:`send` from synchronous context
        (e.g. inside a receive upcall answering an anti-entropy digest)."""
        self._post(self.send(destination, payload))

    async def send_digest(
        self, destination: Address, frontiers: Dict[str, Tuple[int, Tuple[int, ...]]]
    ) -> None:
        """Fire-and-forget an anti-entropy digest (loss is harmless —
        the next periodic round repeats it)."""
        state = self._peer(destination)
        state.stats.digests_sent += 1
        self._transmit(destination, state, self._codec.encode(DigestFrame(frontiers)))

    async def send_heartbeat(self, destination: Address, count: int) -> None:
        """Fire-and-forget a liveness beacon (never acked or retransmitted)."""
        state = self._peer(destination)
        state.stats.heartbeats_sent += 1
        self._transmit(destination, state, self._codec.encode(HeartbeatFrame(count=count)))

    def send_control(self, destination: Address, frame: Frame) -> None:
        """Fire-and-forget a membership control frame (VIEW/JOIN/JOIN_ACK/
        LEAVE).  Reliability is the membership layer's job: JOIN retries
        with backoff, VIEW is periodically re-announced, a lost LEAVE is
        backstopped by quarantine eviction."""
        state = self._peer(destination)
        state.stats.control_sent += 1
        self._transmit(destination, state, self._codec.encode(frame))

    def send_relay(self, destinations: List[Address], frame: RelayFrame) -> int:
        """Encode a RELAY envelope once and push it to every destination.

        Fire-and-forget, like digests: a lost push is healed by the
        other relay copies and ultimately by anti-entropy, so relays
        never enter the ack/retransmit machinery (an overlay of N nodes
        would otherwise rebuild exactly the per-peer session cost the
        overlay exists to avoid).  Returns the number of pushes.
        """
        if not destinations:
            return 0
        data = self._codec.encode(frame)
        for destination in destinations:
            state = self._peer(destination)
            state.stats.relay_sent += 1
            self._transmit(destination, state, data)
        return len(destinations)

    # ------------------------------------------------------------------
    # coalescing wire path
    # ------------------------------------------------------------------

    def _transmit(self, addr: Address, state: _PeerState, frame_bytes: bytes) -> None:
        """Put an encoded frame on the wire via the coalescing outbox.

        With ``coalesce_mtu == 0`` the frame is its own datagram (the
        PR-1 wire behaviour).  Otherwise it joins the peer's outbox,
        which flushes as one BATCH datagram when the budget fills, when
        the flush timer fires, or on an explicit :meth:`flush`.
        """
        if self._policy.coalesce_mtu <= 0:
            self._send_datagram(addr, state, frame_bytes, frames=1)
            return
        cost = varint_size(len(frame_bytes)) + len(frame_bytes)
        if state.outbox and state.outbox_bytes + cost > self._policy.coalesce_mtu:
            self._flush_peer(addr, state)
        state.outbox.append(frame_bytes)
        state.outbox_bytes += cost
        if state.outbox_bytes >= self._policy.coalesce_mtu:
            # Budget full (or a single oversized frame): no point waiting.
            self._flush_peer(addr, state)
        elif state.flush_handle is None:
            state.flush_handle = asyncio.get_running_loop().call_later(
                self._policy.flush_interval, self._flush_peer, addr, state
            )

    def _flush_peer(self, addr: Address, state: _PeerState) -> None:
        """Emit the peer's outbox as one datagram, piggybacking any
        pending delayed ack.  Doubles as the flush-timer callback."""
        if state.flush_handle is not None:
            state.flush_handle.cancel()
            state.flush_handle = None
        frames = state.outbox
        if not frames and not state.ack_pending:
            return
        state.outbox = []
        state.outbox_bytes = 0
        ack = self._take_ack(state)
        if ack is not None:
            state.stats.acks_sent += 1
        if not frames:
            # Explicit flush with only a delayed ack pending.
            self._send_datagram(addr, state, self._codec.encode(ack), frames=1)
            return
        if len(frames) == 1 and ack is None:
            # A lone frame needs no container.
            self._send_datagram(addr, state, frames[0], frames=1)
            return
        if ack is not None:
            state.stats.acks_piggybacked += 1
        state.stats.batches_sent += 1
        data = self._codec.encode(BatchFrame(frames=tuple(frames), ack=ack))
        self._send_datagram(addr, state, data, frames=len(frames))

    def _take_ack(self, state: _PeerState) -> Optional[AckFrame]:
        """Consume the pending delayed ack, built maximally cumulative
        at this moment (not at the moment the data arrived)."""
        if not state.ack_pending:
            return None
        state.ack_pending = False
        if state.ack_handle is not None:
            state.ack_handle.cancel()
            state.ack_handle = None
        return AckFrame(
            cumulative=state.recv_cumulative,
            sacks=tuple(sorted(state.recv_out_of_order)[:64]),
        )

    def _ack_timer(self, addr: Address, state: _PeerState) -> None:
        """Delayed-ack window expired: acknowledge everything received."""
        state.ack_handle = None
        if not state.ack_pending:
            return
        if state.outbox:
            # Frames are already queued: flush now and piggyback the ack.
            self._flush_peer(addr, state)
            return
        ack = self._take_ack(state)
        state.stats.acks_sent += 1
        self._send_datagram(addr, state, self._codec.encode(ack), frames=1)

    def _send_datagram(
        self, addr: Address, state: _PeerState, data: bytes, frames: int
    ) -> None:
        state.stats.datagrams_sent += 1
        state.stats.bytes_sent += len(data)
        state.stats.frames_sent += frames
        state.last_send = asyncio.get_running_loop().time()
        if self._transport_send_now is not None:
            # Batched transport: enqueue synchronously, no task per
            # datagram — the transport flushes the tick's sends in one
            # burst.  Oversize rejection matches the async path, where
            # the failed task's exception was swallowed by _reap.
            try:
                self._transport_send_now(addr, data)
            except ConfigurationError:
                pass
            return
        self._post(self._transport.send(addr, data))

    def flush(self, address: Optional[Address] = None) -> None:
        """Flush queued frames (and pending delayed acks) immediately.

        With no address every peer is flushed.  Latency-sensitive
        callers use this instead of waiting out ``flush_interval``.
        """
        targets = [address] if address is not None else list(self._peers)
        for addr in targets:
            state = self._peers.get(addr)
            if state is not None and (state.outbox or state.ack_pending):
                self._flush_peer(addr, state)

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------

    def _handle_datagram_batch(self, batch) -> None:
        """One receive upcall for a whole wakeup's worth of datagrams.

        The batch entries are borrowed views into the transport's buffer
        ring; everything below (frame dispatch, the node's intake) runs
        synchronously inside this call, and anything stored long-term is
        copied at the journal boundary (``codec.retain``), so no view
        escapes the callback.
        """
        handle = self._handle_datagram
        for data, addr in batch:
            handle(data, addr)

    def _handle_datagram(self, data: bytes, addr: Address) -> None:
        if self._on_peer_activity is not None:
            # Any datagram — data, ack, digest, heartbeat, even one that
            # fails to decode — is evidence the address is alive.
            self._on_peer_activity(addr)
        state = self._peer(addr)
        state.stats.datagrams_received += 1
        state.stats.bytes_received += len(data)
        if not FrameCodec.is_frame(data):
            # Frame-less sender (e.g. a bare AsyncCausalPeer): pass through.
            self._on_message(data, addr)
            return
        try:
            frame = self._codec.decode(data)
        except CodecError:
            self.frame_errors += 1
            return
        self._dispatch(frame, addr)

    def _dispatch(self, frame: Frame, addr: Address) -> None:
        state = self._peer(addr)
        now = asyncio.get_running_loop().time()
        if isinstance(frame, BatchFrame):
            state.stats.batches_received += 1
            if frame.ack is not None:
                # Piggybacked ack: processed exactly like a standalone one.
                self._on_ack(state, frame.ack, now)
            for inner_bytes in frame.frames:
                try:
                    inner = self._codec.decode(inner_bytes)
                except CodecError:
                    self.frame_errors += 1
                    continue
                self._dispatch(inner, addr)
            return
        state.stats.frames_received += 1
        if (
            isinstance(frame, (DataFrame, DigestFrame, RelayFrame))
            and self._data_gate is not None
            and not self._data_gate()
        ):
            # Not admitted to the data plane (e.g. mid-JOIN): drop
            # without acking so the sender keeps the frame alive.
            self.gated_frames += 1
            return
        if isinstance(frame, DataFrame):
            self._on_data(state, frame, addr, now)
        elif isinstance(frame, AckFrame):
            self._on_ack(state, frame, now)
        elif isinstance(frame, NackFrame):
            self._on_nack(state, frame, addr, now)
        elif isinstance(frame, DigestFrame):
            state.stats.digests_received += 1
            if self._on_digest is not None:
                self._on_digest(frame.frontiers, addr)
        elif isinstance(frame, HeartbeatFrame):
            state.stats.heartbeats_received += 1
        elif isinstance(frame, RelayFrame):
            state.stats.relay_received += 1
            if self._on_relay is not None:
                self._on_relay(frame, addr)
        elif isinstance(frame, (ViewFrame, JoinFrame, JoinAckFrame, LeaveFrame)):
            state.stats.control_received += 1
            if self._on_membership is not None:
                self._on_membership(frame, addr)

    def _on_data(self, state: _PeerState, frame: DataFrame, addr: Address, now: float) -> None:
        if state.note_received(frame.seq):
            state.stats.data_received += 1
            self._on_message(frame.payload, addr)
        else:
            state.stats.duplicates += 1
        # Always acknowledge — the duplicate may be a retransmission whose
        # previous ack was lost, and only an ack stops the sender's timer.
        if self._policy.ack_delay <= 0:
            ack = AckFrame(
                cumulative=state.recv_cumulative,
                sacks=tuple(sorted(state.recv_out_of_order)[:64]),
            )
            state.stats.acks_sent += 1
            self._transmit(addr, state, self._codec.encode(ack))
        else:
            # Delayed: one cumulative ack per window, piggybacked onto an
            # outgoing batch whenever this link carries reverse traffic.
            state.ack_pending = True
            if state.ack_handle is None:
                state.ack_handle = asyncio.get_running_loop().call_later(
                    self._policy.ack_delay, self._ack_timer, addr, state
                )
        self._maybe_nack(state, addr, now)

    def _maybe_nack(self, state: _PeerState, addr: Address, now: float) -> None:
        gaps = [
            seq
            for seq in state.missing_seqs()
            if now - state.nack_last.get(seq, -1e18) >= self._policy.nack_interval
        ]
        if not gaps:
            return
        for seq in gaps:
            state.nack_last[seq] = now
        state.stats.nacks_sent += 1
        self._transmit(addr, state, self._codec.encode(NackFrame(tuple(gaps))))

    def _on_ack(self, state: _PeerState, frame: AckFrame, now: float) -> None:
        state.stats.acks_received += 1
        state.tx_acked = max(state.tx_acked, frame.cumulative)
        sacked = set(frame.sacks)
        for seq in [
            s for s in state.unacked if s <= frame.cumulative or s in sacked
        ]:
            pending = state.unacked.pop(seq)
            if pending.sends == 1:
                # Karn's rule: only never-retransmitted frames give a
                # trustworthy RTT sample.
                sample = now - pending.first_sent
                state.observe_rtt(sample)
                if self._rtt_histogram is not None:
                    self._rtt_histogram.observe(sample)
        if len(state.unacked) < self._policy.send_buffer:
            state.space.set()

    def _on_nack(self, state: _PeerState, frame: NackFrame, addr: Address, now: float) -> None:
        state.stats.nacks_received += 1
        for seq in frame.missing:
            pending = state.unacked.get(seq)
            if pending is not None and pending.sends <= self._policy.max_retries:
                self._retransmit(state, addr, seq, pending, now)

    # ------------------------------------------------------------------
    # retransmission
    # ------------------------------------------------------------------

    async def _tick_loop(self) -> None:
        while not self._closed:
            await asyncio.sleep(self._policy.tick_interval)
            now = asyncio.get_running_loop().time()
            for address, state in self._peers.items():
                if state.quarantined:
                    continue
                due = [
                    (seq, pending)
                    for seq, pending in state.unacked.items()
                    if pending.next_due <= now
                ]
                for seq, pending in due:
                    if pending.sends > self._policy.max_retries:
                        state.unacked.pop(seq, None)
                        state.stats.drops += 1
                        if len(state.unacked) < self._policy.send_buffer:
                            state.space.set()
                    else:
                        self._retransmit(state, address, seq, pending, now)

    def _retransmit(
        self, state: _PeerState, addr: Address, seq: int, pending: _Pending, now: float
    ) -> None:
        pending.sends += 1
        pending.timeout = min(
            pending.timeout * self._policy.backoff_factor, self._policy.max_timeout
        )
        pending.next_due = now + self._jittered(pending.timeout)
        state.stats.retransmits += 1
        self._transmit(addr, state, pending.data)

    def _jittered(self, timeout: float) -> float:
        return timeout * (1.0 + self._policy.jitter * self._random.random())

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _disarm(state: _PeerState) -> None:
        """Drop a peer's queued-but-unsent wire state (outbox, timers,
        pending ack) — for quarantine, purge and shutdown."""
        state.outbox.clear()
        state.outbox_bytes = 0
        state.ack_pending = False
        if state.flush_handle is not None:
            state.flush_handle.cancel()
            state.flush_handle = None
        if state.ack_handle is not None:
            state.ack_handle.cancel()
            state.ack_handle = None

    def _peer(self, address: Address) -> _PeerState:
        state = self._peers.get(address)
        if state is None:
            state = _PeerState(self._policy)
            self._peers[address] = state
        return state

    def _post(self, coroutine) -> None:
        """Run an async send from sync context, tracking the task."""
        if self._closed:
            coroutine.close()
            return
        task = asyncio.get_running_loop().create_task(coroutine)
        self._tasks.add(task)
        task.add_done_callback(self._reap)

    def _reap(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        if not task.cancelled():
            # Retrieve (and swallow) any exception: a failed background
            # send is a transport hiccup that retransmission or
            # anti-entropy covers, and must not spam the event loop.
            task.exception()
