"""Fault injection for real transports: drop, duplicate, reorder.

:class:`~repro.net.bus.LocalAsyncBus` injects loss on its own; this
module wraps *any* transport — notably real UDP sockets — so soak tests
can subject the reliability layer to an adversarial substrate while the
datagrams still cross the loopback interface for real.

All faults are applied on the **send** side, deterministically from a
seeded :class:`~repro.util.rng.RandomSource`, so a failing soak run can
be replayed exactly.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Hashable, Optional, Set, Tuple

from repro.core.errors import ConfigurationError
from repro.net.peer import Transport
from repro.util.rng import RandomSource

__all__ = ["FaultyTransport"]

Address = Hashable


class FaultyTransport(Transport):
    """Decorator around a transport that mangles outgoing datagrams.

    Args:
        inner: the wrapped transport (it keeps handling receives).
        drop_rate: probability a datagram vanishes.
        duplicate_rate: probability a datagram is sent twice.
        reorder_rate: probability a datagram is delayed by a random
            interval drawn from ``reorder_delay`` (letting later sends
            overtake it).
        reorder_delay: (min, max) seconds for the reorder hold-back.
        rng: fault randomness; seeded default for reproducibility.
    """

    def __init__(
        self,
        inner: Transport,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_delay: Tuple[float, float] = (0.002, 0.02),
        rng: Optional[RandomSource] = None,
    ) -> None:
        for name, value in (
            ("drop_rate", drop_rate),
            ("duplicate_rate", duplicate_rate),
            ("reorder_rate", reorder_rate),
        ):
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1), got {value}")
        if reorder_delay[0] < 0 or reorder_delay[1] < reorder_delay[0]:
            raise ConfigurationError(f"invalid reorder_delay window {reorder_delay}")
        self._inner = inner
        self._drop_rate = drop_rate
        self._duplicate_rate = duplicate_rate
        self._reorder_rate = reorder_rate
        self._reorder_delay = reorder_delay
        self._rng = rng if rng is not None else RandomSource(seed=0).spawn("faults")
        self._tasks: Set[asyncio.Task] = set()
        self._closed = False
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0

    def __getattr__(self, name):
        # Everything not overridden (e.g. UdpTransport.local_address)
        # passes through to the wrapped transport.
        return getattr(self._inner, name)

    async def send(self, destination: Address, data: bytes) -> None:
        if self._drop_rate and self._rng.random() < self._drop_rate:
            self.dropped += 1
            return
        copies = 1
        if self._duplicate_rate and self._rng.random() < self._duplicate_rate:
            copies = 2
            self.duplicated += 1
        for _ in range(copies):
            if self._reorder_rate and self._rng.random() < self._reorder_rate:
                self.reordered += 1
                delay = self._rng.uniform(*self._reorder_delay)
                self._hold_back(destination, data, delay)
            else:
                await self._inner.send(destination, data)

    def _hold_back(self, destination: Address, data: bytes, delay: float) -> None:
        async def later() -> None:
            await asyncio.sleep(delay)
            if not self._closed:
                await self._inner.send(destination, data)

        task = asyncio.get_running_loop().create_task(later())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def set_receiver(self, callback: Callable[[bytes, Address], None]) -> None:
        self._inner.set_receiver(callback)

    async def close(self) -> None:
        self._closed = True
        for task in list(self._tasks):
            task.cancel()
        self._tasks.clear()
        await self._inner.close()
