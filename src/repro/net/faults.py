"""Fault injection for real transports: drop, duplicate, reorder, windows.

:class:`~repro.net.bus.LocalAsyncBus` injects loss on its own; this
module wraps *any* transport — notably real UDP sockets — so soak tests
can subject the reliability layer to an adversarial substrate while the
datagrams still cross the loopback interface for real.

Two fault families compose:

* **probabilistic** faults (drop/duplicate/reorder rates) model a noisy
  link, drawn deterministically from a seeded
  :class:`~repro.util.rng.RandomSource` so a failing soak run can be
  replayed exactly;
* **scheduled** :class:`FaultWindow` intervals model *correlated*
  faults — a partition (every datagram to the named peers vanishes for
  the window) or a latency spike (every datagram is held back) — the
  live counterpart of the simulator's
  :class:`~repro.sim.failures.PartitionWindow`.

All faults are applied on the **send** side.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, FrozenSet, Hashable, Optional, Sequence, Set, Tuple

from repro.core.errors import ConfigurationError
from repro.net.peer import Transport
from repro.util.rng import RandomSource

__all__ = ["FaultWindow", "FaultyTransport"]

Address = Hashable


@dataclass(frozen=True)
class FaultWindow:
    """One scheduled fault interval on a transport's outgoing datagrams.

    Times are seconds of *transport elapsed time* — measured from
    :meth:`FaultyTransport.arm` (or lazily from the first send), so
    windows line up across every transport armed at the same moment.

    Attributes:
        start: window opens at this elapsed time (inclusive).
        end: window closes at this elapsed time (exclusive).
        drop: True models a partition — matching datagrams vanish.
        extra_delay: latency spike — matching datagrams are held back
            this many seconds (ignored when ``drop`` is set).
        peers: destinations the window applies to; ``None`` means all
            (a full partition / global spike).
    """

    start: float
    end: float
    drop: bool = False
    extra_delay: float = 0.0
    peers: Optional[FrozenSet[Address]] = None

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ConfigurationError(
                f"window needs 0 <= start < end, got [{self.start}, {self.end})"
            )
        if self.extra_delay < 0:
            raise ConfigurationError(
                f"extra_delay must be >= 0, got {self.extra_delay}"
            )
        if not self.drop and self.extra_delay == 0:
            raise ConfigurationError("window does nothing: set drop or extra_delay")
        if self.peers is not None:
            object.__setattr__(self, "peers", frozenset(self.peers))

    def active_at(self, elapsed: float) -> bool:
        """Whether the window covers this elapsed time."""
        return self.start <= elapsed < self.end

    def applies_to(self, destination: Address) -> bool:
        """Whether the window covers this destination."""
        return self.peers is None or destination in self.peers


class FaultyTransport(Transport):
    """Decorator around a transport that mangles outgoing datagrams.

    Args:
        inner: the wrapped transport (it keeps handling receives).
        drop_rate: probability a datagram vanishes.
        duplicate_rate: probability a datagram is sent twice.
        reorder_rate: probability a datagram is delayed by a random
            interval drawn from ``reorder_delay`` (letting later sends
            overtake it).
        reorder_delay: (min, max) seconds for the reorder hold-back.
        rng: fault randomness; seeded default for reproducibility.
        windows: scheduled :class:`FaultWindow` intervals (partitions
            and latency spikes); checked before the probabilistic
            faults, so a partitioned datagram is never double-counted.
    """

    def __init__(
        self,
        inner: Transport,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_delay: Tuple[float, float] = (0.002, 0.02),
        rng: Optional[RandomSource] = None,
        windows: Sequence[FaultWindow] = (),
    ) -> None:
        for name, value in (
            ("drop_rate", drop_rate),
            ("duplicate_rate", duplicate_rate),
            ("reorder_rate", reorder_rate),
        ):
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1), got {value}")
        if reorder_delay[0] < 0 or reorder_delay[1] < reorder_delay[0]:
            raise ConfigurationError(f"invalid reorder_delay window {reorder_delay}")
        self._inner = inner
        self._drop_rate = drop_rate
        self._duplicate_rate = duplicate_rate
        self._reorder_rate = reorder_rate
        self._reorder_delay = reorder_delay
        self._rng = rng if rng is not None else RandomSource(seed=0).spawn("faults")
        self._windows = tuple(windows)
        self._epoch: Optional[float] = None
        self._tasks: Set[asyncio.Task] = set()
        self._closed = False
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.window_dropped = 0
        self.window_delayed = 0

    def arm(self) -> None:
        """Start the fault-window clock now (otherwise it starts lazily
        at the first send).  Arm every transport of a scenario together
        so their windows coincide."""
        self._epoch = asyncio.get_running_loop().time()

    def set_windows(self, windows: Sequence[FaultWindow]) -> None:
        """Replace the scheduled fault windows.

        Windows usually reference peer *addresses*, which are only known
        after every transport of the scenario is bound — so harnesses
        construct transports first and install the windows afterwards.
        """
        self._windows = tuple(windows)

    def _elapsed(self) -> float:
        now = asyncio.get_running_loop().time()
        if self._epoch is None:
            self._epoch = now
        return now - self._epoch

    def __getattr__(self, name):
        # Everything not overridden (e.g. UdpTransport.local_address)
        # passes through to the wrapped transport.
        return getattr(self._inner, name)

    async def send(self, destination: Address, data: bytes) -> None:
        if self._windows:
            elapsed = self._elapsed()
            for window in self._windows:
                if not (window.active_at(elapsed) and window.applies_to(destination)):
                    continue
                if window.drop:
                    self.window_dropped += 1
                    return
                # Latency spike: the datagram still arrives, late, and
                # bypasses the probabilistic faults (a spike models the
                # path, not extra loss).
                self.window_delayed += 1
                self._hold_back(destination, data, window.extra_delay)
                return
        if self._drop_rate and self._rng.random() < self._drop_rate:
            self.dropped += 1
            return
        copies = 1
        if self._duplicate_rate and self._rng.random() < self._duplicate_rate:
            copies = 2
            self.duplicated += 1
        for _ in range(copies):
            if self._reorder_rate and self._rng.random() < self._reorder_rate:
                self.reordered += 1
                delay = self._rng.uniform(*self._reorder_delay)
                self._hold_back(destination, data, delay)
            else:
                await self._inner.send(destination, data)

    def _hold_back(self, destination: Address, data: bytes, delay: float) -> None:
        async def later() -> None:
            await asyncio.sleep(delay)
            if not self._closed:
                await self._inner.send(destination, data)

        task = asyncio.get_running_loop().create_task(later())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def set_receiver(self, callback: Callable[[bytes, Address], None]) -> None:
        self._inner.set_receiver(callback)

    async def close(self) -> None:
        self._closed = True
        for task in list(self._tasks):
            task.cancel()
        self._tasks.clear()
        await self._inner.close()
