"""Crash durability for a networked node: write-ahead log + snapshots.

The delivery condition (Algorithm 2) only holds if a process's vector
and per-peer sequence numbers survive the process itself: a node that
restarts with a zeroed clock re-issues ``(sender, seq)`` message ids,
and its vector no longer accounts for deliveries it already performed —
both silently violate causal order at every peer.  This module persists
exactly the state whose loss is unsafe:

* the **clock**: vector + send counter.  The WAL does not store vectors
  per record; it stores the *operations* (``send`` increments the own
  entries, ``dlv`` increments the recorded sender keys) and replays
  them over the last snapshot — the same fold the live clock performs.
* the **delivered frontiers**: per-sender ``(contiguous, extras)``
  coverage of everything this node has *delivered* (own broadcasts
  included).  After a restart these re-arm duplicate suppression and
  the anti-entropy digest.  Deliberately *delivered*, not received: a
  restarted node must not advertise coverage of messages it held
  pending at the crash and can no longer serve — peers simply push
  those again.
* the **link-sequence leases**: the reliable session's per-peer send
  seqs are reserved in blocks (``seq_lease``) *before* first use, so a
  restarted node resumes past the lease and never reuses a link seq
  that a receiver may have already acked.
* the **own message bytes**: each ``send`` record carries the encoded
  message, so a restart can re-stock the anti-entropy store with its
  own unsnapshotted broadcasts and serve them to peers that missed
  them (remote bytes are not journalled — their original sender can
  always re-serve them).

Records are JSON lines appended to ``wal.log``; every
``snapshot_interval`` records the node folds its live state into
``snapshot.json`` (written atomically via rename) and truncates the
WAL.  Recovery tolerates a torn trailing line — the tail is discarded
and the file truncated back to the last complete record.  There is no
shutdown snapshot: the design is crash-only, so the recovery path is
the only path and gets exercised constantly.
"""

from __future__ import annotations

import base64
import binascii
import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.errors import ConfigurationError

__all__ = ["LinkState", "RecoveredState", "NodeJournal"]

Address = Hashable
Frontiers = Dict[str, Tuple[int, Tuple[int, ...]]]

_WAL_NAME = "wal.log"
_SNAPSHOT_NAME = "snapshot.json"


def _address_to_json(address: Address):
    """Addresses are tuples like ``("127.0.0.1", 9000)``; JSON has no
    tuples, so encode recursively as lists and mark plain lists apart
    by construction (addresses never *are* lists)."""
    if isinstance(address, tuple):
        return [_address_to_json(part) for part in address]
    return address


def _address_from_json(value) -> Address:
    if isinstance(value, list):
        return tuple(_address_from_json(part) for part in value)
    return value


@dataclass(frozen=True)
class LinkState:
    """Recovered per-peer reliable-session state.

    Attributes:
        tx_next: next link seq to use towards this peer (past any lease).
        rx_cumulative: highest contiguously received link seq (snapshot
            cadence only — may lag the pre-crash value; the causal
            layer's ``(sender, seq)`` dedup absorbs the re-accepted
            duplicates).
        rx_out_of_order: received-but-not-contiguous link seqs.
    """

    tx_next: int = 1
    rx_cumulative: int = 0
    rx_out_of_order: Tuple[int, ...] = ()


@dataclass(frozen=True)
class RecoveredState:
    """Everything :class:`NodeJournal.open` reconstructed.

    Attributes:
        vector: the clock vector at the crash (snapshot + WAL replay).
        send_seq: the clock's send counter at the crash.
        delivered: per-sender ``(contiguous, extras)`` delivery coverage.
        links: per-peer session state (see :class:`LinkState`).
        own_messages: encoded own broadcasts still in the WAL, by seq.
        delta_refs: per-peer, per-sender newest delta reference
            ``(msg_seq, vector, sender_keys)`` from the last snapshot,
            so a restarted node can keep decoding a live sender's
            delta-encoded messages without waiting for a full-encoding
            resync.
        wal_records: how many WAL records were replayed (load metric).
        detector_checks / detector_alerts: the alert detector's lifetime
            counters at the crash (snapshot baseline + one check per
            replayed delivery, alerts from the records' flags), so the
            alert *rate* survives restart accounting instead of
            resetting to a misleading zero.
        own_keys: the clock's *effective* entry set at the crash — the
            identity keys unless a membership rekey (join state transfer)
            changed them; empty means "identity keys" (pre-membership
            journals).  A restarting node rekeys its pristine clock to
            these before restoring the vector.
        view: the last persisted group view ``(view_id, members, epoch)``
            with members as ``(node_id, address, keys)`` tuples and
            ``epoch`` the clock-sizing generation (0 for pre-epoch
            journals), or ``None`` when the node never joined a dynamic
            group.
    """

    vector: Tuple[int, ...]
    send_seq: int
    delivered: Frontiers
    links: Dict[Address, LinkState] = field(default_factory=dict)
    own_messages: Dict[int, bytes] = field(default_factory=dict)
    delta_refs: Dict[
        Address, Dict[str, Tuple[int, Tuple[int, ...], Tuple[int, ...]]]
    ] = field(default_factory=dict)
    wal_records: int = 0
    detector_checks: int = 0
    detector_alerts: int = 0
    own_keys: Tuple[int, ...] = ()
    view: Optional[
        Tuple[int, Tuple[Tuple[str, Address, Tuple[int, ...]], ...], int]
    ] = None


class _Frontier:
    """Mutable ``(contiguous, extras)`` coverage of one sender's seqs."""

    __slots__ = ("contiguous", "extras")

    def __init__(self, contiguous: int = 0, extras: Iterable[int] = ()) -> None:
        self.contiguous = contiguous
        self.extras: Set[int] = {s for s in extras if s > contiguous}
        self._compact()

    def add(self, seq: int) -> None:
        if seq <= self.contiguous:
            return
        self.extras.add(seq)
        self._compact()

    def covers(self, seq: int) -> bool:
        return seq <= self.contiguous or seq in self.extras

    def _compact(self) -> None:
        while self.contiguous + 1 in self.extras:
            self.contiguous += 1
            self.extras.discard(self.contiguous)

    def as_tuple(self) -> Tuple[int, Tuple[int, ...]]:
        return (self.contiguous, tuple(sorted(self.extras)))

    def ids(self) -> Iterator[int]:
        yield from range(1, self.contiguous + 1)
        yield from sorted(self.extras)


class NodeJournal:
    """Append-only WAL + periodic snapshots for one node's causal state.

    One journal owns one directory; one directory serves one node
    identity (validated on :meth:`open` — reusing a directory for a
    different node, R, or key set raises :class:`ConfigurationError`
    rather than silently corrupting causal state).

    Args:
        data_dir: directory for ``wal.log`` / ``snapshot.json``
            (created if missing).
        node_id: the owning node's identity.
        r: the clock's vector size (replay increments need it).
        own_keys: the clock's entry set ``f(p_i)``.
        snapshot_interval: WAL records between snapshots.
        seq_lease: link seqs reserved per lease record; larger leases
            mean fewer WAL writes but a bigger seq gap after restart
            (gaps are harmless — receivers treat them as loss and the
            cumulative ack simply jumps).
        fsync: fsync the WAL after every append.  Off by default: the
            write is flushed to the OS (surviving process crashes, the
            failure mode under test); fsync additionally survives
            machine crashes at a large latency cost.
    """

    def __init__(
        self,
        data_dir: str,
        node_id: Hashable,
        r: int,
        own_keys: Sequence[int],
        snapshot_interval: int = 256,
        seq_lease: int = 1024,
        fsync: bool = False,
    ) -> None:
        if snapshot_interval <= 0:
            raise ConfigurationError(
                f"snapshot_interval must be positive, got {snapshot_interval}"
            )
        if seq_lease <= 0:
            raise ConfigurationError(f"seq_lease must be positive, got {seq_lease}")
        self._dir = str(data_dir)
        self._node = str(node_id)
        self._r = int(r)
        # Identity keys: the constructor-time entry set, stable across
        # restarts (it is what _check_identity pins a directory to).
        # _own_keys is the *effective* set — identical until a membership
        # rekey record diverges them — and is what send-replay increments.
        self._identity_keys = tuple(int(k) for k in own_keys)
        self._own_keys = self._identity_keys
        self._view: Optional[
            Tuple[int, Tuple[Tuple[str, Address, Tuple[int, ...]], ...], int]
        ] = None
        self._interval = snapshot_interval
        self._seq_lease = seq_lease
        self._fsync = fsync
        self._wal = None
        self._records_since_snapshot = 0
        self._delivered: Dict[str, _Frontier] = {}
        self._leases: Dict[Address, int] = {}
        self._delta_refs: Dict[
            Address, Dict[str, Tuple[int, Tuple[int, ...], Tuple[int, ...]]]
        ] = {}
        self.snapshots_written = 0
        self.appends = 0
        self.replayed_records = 0
        self.replay_seconds = 0.0
        self._detector_checks = 0
        self._detector_alerts = 0
        self._append_hist = None  # set by bind_metrics()
        self._snapshot_hist = None

    def bind_metrics(self, registry) -> None:
        """Attach a metrics registry (``repro.obs``).

        Append and snapshot latencies are push histograms (the write
        path's fsync cost is exactly the distribution worth watching);
        the rest are pull counters synced at snapshot time.  Call before
        :meth:`open` to have the replay timing captured too.
        """
        self._append_hist = registry.histogram("repro_journal_append_seconds")
        self._snapshot_hist = registry.histogram("repro_journal_snapshot_seconds")
        appends = registry.counter("repro_journal_appends_total")
        snapshots = registry.counter("repro_journal_snapshots_total")
        replayed = registry.counter("repro_journal_replayed_records_total")
        replay_seconds = registry.gauge("repro_journal_replay_seconds")

        def collect() -> None:
            appends.set(self.appends)
            snapshots.set(self.snapshots_written)
            replayed.set(self.replayed_records)
            replay_seconds.set(self.replay_seconds)

        registry.register_collector(collect)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    @property
    def wal_path(self) -> str:
        """Path of the append-only log."""
        return os.path.join(self._dir, _WAL_NAME)

    @property
    def snapshot_path(self) -> str:
        """Path of the last full snapshot."""
        return os.path.join(self._dir, _SNAPSHOT_NAME)

    def open(self) -> Optional[RecoveredState]:
        """Replay any prior state and arm the journal for appending.

        Returns the reconstructed :class:`RecoveredState`, or ``None``
        when the directory holds no prior state (first boot).
        """
        if self._wal is not None:
            raise ConfigurationError("journal is already open")
        os.makedirs(self._dir, exist_ok=True)

        vector = [0] * self._r
        send_seq = 0
        links: Dict[Address, LinkState] = {}
        replay_start = time.perf_counter()
        had_snapshot = self._load_snapshot(vector, links)
        if had_snapshot:
            send_seq = self._snapshot_send_seq
        own_messages: Dict[int, bytes] = {}
        replayed = self._replay_wal(vector, own_messages)
        self.replay_seconds = time.perf_counter() - replay_start
        self.replayed_records = replayed
        if replayed:
            send_seq = max(send_seq, self._max_replayed_send)

        # Leases extend the snapshot's per-peer send seqs: resume past
        # the highest seq the crashed process may have put on the wire.
        for address, upper in self._leases.items():
            prior = links.get(address, LinkState())
            if upper + 1 > prior.tx_next:
                links[address] = LinkState(
                    tx_next=upper + 1,
                    rx_cumulative=prior.rx_cumulative,
                    rx_out_of_order=prior.rx_out_of_order,
                )

        fresh_wal = (
            not os.path.exists(self.wal_path)
            or os.path.getsize(self.wal_path) == 0
        )
        self._wal = open(self.wal_path, "a", encoding="utf-8")
        if fresh_wal:
            self._append({"t": "open", "node": self._node, "r": self._r,
                          "k": list(self._identity_keys)}, count=False)

        if not had_snapshot and not replayed:
            return None
        return RecoveredState(
            vector=tuple(vector),
            send_seq=send_seq,
            delivered={s: f.as_tuple() for s, f in self._delivered.items()},
            links=links,
            own_messages=own_messages,
            delta_refs=self._delta_refs,
            wal_records=replayed,
            detector_checks=self._detector_checks,
            detector_alerts=self._detector_alerts,
            own_keys=self._own_keys,
            view=self._view,
        )

    def _load_snapshot(self, vector: List[int], links: Dict[Address, LinkState]) -> bool:
        self._snapshot_send_seq = 0
        try:
            with open(self.snapshot_path, "r", encoding="utf-8") as handle:
                snap = json.load(handle)
        except FileNotFoundError:
            return False
        except (json.JSONDecodeError, OSError) as exc:
            # A torn snapshot cannot happen (atomic rename); a truly
            # corrupt one is an operator problem, not a silent restart.
            raise ConfigurationError(
                f"corrupt snapshot at {self.snapshot_path}: {exc}"
            ) from exc
        self._check_identity(snap, self.snapshot_path)
        if len(snap["vector"]) != self._r:
            raise ConfigurationError(
                f"snapshot vector has {len(snap['vector'])} entries, expected {self._r}"
            )
        vector[:] = [int(v) for v in snap["vector"]]
        self._snapshot_send_seq = int(snap["send_seq"])
        for sender, (contiguous, extras) in snap["delivered"].items():
            self._delivered[sender] = _Frontier(int(contiguous), (int(e) for e in extras))
        for address_json, state in snap["links"]:
            links[_address_from_json(address_json)] = LinkState(
                tx_next=int(state["tx"]),
                rx_cumulative=int(state["rx"]),
                rx_out_of_order=tuple(int(s) for s in state["ooo"]),
            )
        # Absent in pre-observability snapshots: .get keeps them loadable.
        checks, alerts = snap.get("detector", (0, 0))
        self._detector_checks = int(checks)
        self._detector_alerts = int(alerts)
        # Absent in pre-delta snapshots: .get keeps them loadable.
        for address_json, senders in snap.get("delta_refs", []):
            self._delta_refs[_address_from_json(address_json)] = {
                str(sender): (
                    int(seq),
                    tuple(int(v) for v in entries),
                    tuple(int(k) for k in keys),
                )
                for sender, (seq, entries, keys) in senders.items()
            }
        # Absent in pre-membership snapshots: .get keeps them loadable.
        keys_now = snap.get("keys_now")
        if keys_now is not None:
            self._own_keys = tuple(int(k) for k in keys_now)
        view = snap.get("view")
        if view is not None:
            self._view = self._view_from_json(view)
        return True

    @staticmethod
    def _view_from_json(
        value,
    ) -> Tuple[int, Tuple[Tuple[str, Address, Tuple[int, ...]], ...], int]:
        # Pre-epoch records carry [view_id, members]; read them as
        # epoch 0 (the founding geometry) so old journals stay loadable.
        view_id, members = value[0], value[1]
        epoch = int(value[2]) if len(value) > 2 else 0
        return (
            int(view_id),
            tuple(
                (str(node_id), _address_from_json(address), tuple(int(k) for k in keys))
                for node_id, address, keys in members
            ),
            epoch,
        )

    @staticmethod
    def _view_to_json(
        view: Tuple[int, Tuple[Tuple[str, Address, Tuple[int, ...]], ...], int],
    ):
        view_id, members, epoch = view
        return [
            int(view_id),
            [
                [str(node_id), _address_to_json(address), [int(k) for k in keys]]
                for node_id, address, keys in members
            ],
            int(epoch),
        ]

    def _replay_wal(self, vector: List[int], own_messages: Dict[int, bytes]) -> int:
        self._max_replayed_send = 0
        try:
            with open(self.wal_path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return 0
        replayed = 0
        good_offset = 0
        offset = 0
        for line in raw.split(b"\n"):
            offset += len(line) + 1
            if not line:
                continue
            try:
                record = json.loads(line)
                replayed += self._apply_record(record, vector, own_messages)
            except ConfigurationError:
                # Identity mismatch is an operator error, never "torn
                # tail" (ConfigurationError is a ValueError subclass —
                # it must not fall into the clause below).
                raise
            except (ValueError, KeyError, TypeError, binascii.Error):
                # Torn tail from the crash: discard it and everything
                # after (nothing after a torn record is trustworthy).
                break
            good_offset = min(offset, len(raw))
        if good_offset < len(raw):
            with open(self.wal_path, "rb+") as handle:
                handle.truncate(good_offset)
        self._records_since_snapshot = replayed
        return replayed

    def _apply_record(
        self, record: dict, vector: List[int], own_messages: Dict[int, bytes]
    ) -> int:
        kind = record["t"]
        if kind == "open":
            self._check_identity(record, self.wal_path)
            return 0
        # Replay is idempotent against the snapshot: a crash between the
        # snapshot rename and the WAL truncation leaves already-folded
        # records in the log, and they must not double-increment.
        if kind == "send":
            seq = int(record["q"])
            data = base64.b64decode(record["d"])
            if seq <= self._snapshot_send_seq:
                return 1
            for key in self._own_keys:
                vector[key] += 1
            self._max_replayed_send = max(self._max_replayed_send, seq)
            self._frontier(self._node).add(seq)
            own_messages[seq] = data
            return 1
        if kind == "dlv":
            sender = str(record["s"])
            seq = int(record["q"])
            if self._frontier(sender).covers(seq):
                return 1
            for key in record["k"]:
                vector[int(key)] += 1
            self._frontier(sender).add(seq)
            # Every journalled remote delivery went through exactly one
            # detector check; the "a" flag marks the ones that alerted
            # (absent in pre-observability records).
            self._detector_checks += 1
            self._detector_alerts += int(record.get("a", 0))
            return 1
        if kind == "lease":
            address = _address_from_json(record["a"])
            upper = int(record["n"])
            if upper > self._leases.get(address, 0):
                self._leases[address] = upper
            return 1
        if kind == "rekey":
            # Membership granted a new entry set: subsequent send replays
            # increment the new keys (the record is written before any
            # send under the new set).
            self._own_keys = tuple(int(k) for k in record["k"])
            return 1
        if kind == "view":
            view = self._view_from_json(record["v"])
            if self._view is None or view[0] >= self._view[0]:
                self._view = view
            return 1
        raise ValueError(f"unknown WAL record type {kind!r}")

    def _check_identity(self, record: dict, path: str) -> None:
        found = (str(record["node"]), int(record["r"]),
                 tuple(int(k) for k in record["k"]))
        expected = (self._node, self._r, self._identity_keys)
        if found != expected:
            raise ConfigurationError(
                f"journal at {path} belongs to node={found[0]!r} "
                f"(R={found[1]}, keys={found[2]}); this node is "
                f"node={expected[0]!r} (R={expected[1]}, keys={expected[2]})"
            )

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------

    def record_send(self, seq: int, data: bytes) -> None:
        """Log one own broadcast (WAL-before-wire: call before sending)."""
        self._frontier(self._node).add(seq)
        self._append({"t": "send", "q": seq,
                      "d": base64.b64encode(data).decode("ascii")})

    def record_delivery(
        self, sender: str, seq: int, keys: Sequence[int], alert: bool = False
    ) -> None:
        """Log one remote delivery with the sender's entry set.

        ``alert`` marks deliveries the detector flagged, so restart
        accounting reconstructs the alert rate (the flag is written only
        when set, keeping the common record compact).
        """
        self._frontier(str(sender)).add(seq)
        self._detector_checks += 1
        self._detector_alerts += int(alert)
        record = {"t": "dlv", "s": str(sender), "q": seq,
                  "k": [int(k) for k in keys]}
        if alert:
            record["a"] = 1
        self._append(record)

    def record_rekey(self, keys: Sequence[int]) -> None:
        """Log a membership rekey: all later sends use the new entry set.

        Written *before* the clock rekeys (WAL-before-state), so a crash
        between the two replays sends correctly either way — no send can
        sit between the record and the rekey.
        """
        self._own_keys = tuple(int(k) for k in keys)
        self._append({"t": "rekey", "k": [int(k) for k in keys]})

    def record_view(
        self,
        view_id: int,
        members: Sequence[Tuple[str, Address, Sequence[int]]],
        epoch: int = 0,
    ) -> None:
        """Log an installed group view so a restart rejoins consistently.

        ``epoch`` is the view's clock-sizing generation; restarts resume
        on the persisted geometry (keys and epoch together), so a node
        that crashed mid-transition rejoins stamping the right epoch.
        """
        view = (
            int(view_id),
            tuple(
                (str(node_id), address, tuple(int(k) for k in keys))
                for node_id, address, keys in members
            ),
            int(epoch),
        )
        if self._view is not None and view[0] < self._view[0]:
            return
        self._view = view
        self._append({"t": "view", "v": self._view_to_json(view)})

    def record_state_transfer(
        self,
        keys: Sequence[int],
        vector: Sequence[int],
        frontiers: Frontiers,
        links: Optional[Dict[Address, Tuple[int, int, Tuple[int, ...]]]] = None,
    ) -> None:
        """Persist a join state transfer atomically (joiner side).

        A joiner adopts the coordinator's granted keys, clock vector and
        delivered frontiers *before* any local traffic; folding them in
        and writing an immediate snapshot means a crash right after the
        join recovers to the post-transfer state instead of a blank
        identity that would re-issue covered message ids.  Only valid on
        a fresh journal (no deliveries recorded yet).
        """
        if self._delivered and tuple(self._delivered) != (self._node,):
            raise ConfigurationError(
                "state transfer requires a fresh journal (deliveries already recorded)"
            )
        self._own_keys = tuple(int(k) for k in keys)
        for sender, (contiguous, extras) in frontiers.items():
            self._delivered[str(sender)] = _Frontier(
                int(contiguous), (int(e) for e in extras)
            )
        self.write_snapshot(vector, 0, dict(links or {}))

    def ensure_lease(self, address: Address, seq: int) -> None:
        """Reserve link seqs for ``address`` up to at least ``seq``.

        Called by the session just before a seq goes on the wire; writes
        a lease record only when the seq outgrows the current block, so
        the WAL sees one record per ``seq_lease`` sends.
        """
        if seq <= self._leases.get(address, 0):
            return
        upper = seq + self._seq_lease - 1
        self._leases[address] = upper
        self._append({"t": "lease", "a": _address_to_json(address), "n": upper})

    def _frontier(self, sender: str) -> _Frontier:
        frontier = self._delivered.get(sender)
        if frontier is None:
            frontier = self._delivered[sender] = _Frontier()
        return frontier

    def _append(self, record: dict, count: bool = True) -> None:
        if self._wal is None:
            raise ConfigurationError("journal is not open")
        start = time.perf_counter() if self._append_hist is not None else 0.0
        self._wal.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._wal.flush()
        if self._fsync:
            os.fsync(self._wal.fileno())
        self.appends += 1
        if self._append_hist is not None:
            self._append_hist.observe(time.perf_counter() - start)
        if count:
            self._records_since_snapshot += 1

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    @property
    def snapshot_due(self) -> bool:
        """Whether enough records accumulated to fold into a snapshot."""
        return self._records_since_snapshot >= self._interval

    def write_snapshot(
        self,
        vector: Sequence[int],
        send_seq: int,
        links: Dict[Address, Tuple[int, int, Tuple[int, ...]]],
        delta_refs: Optional[
            Dict[Address, Dict[str, Tuple[int, Tuple[int, ...], Tuple[int, ...]]]]
        ] = None,
        detector: Optional[Tuple[int, int]] = None,
    ) -> None:
        """Atomically persist the full state and truncate the WAL.

        Args:
            vector: the live clock vector.
            send_seq: the live clock send counter.
            links: the session's ``link_states()`` — per peer
                ``(next_seq, recv_cumulative, recv_out_of_order)``;
                merged with any outstanding leases.
            delta_refs: the node's newest per-(peer, sender) delta
                reference ``(msg_seq, vector, sender_keys)``; optional
                because only delta-enabled nodes have any.
            detector: the live detector's ``(checks, alerts)`` lifetime
                counters; becomes the baseline replay counts on top of.
        """
        if self._wal is None:
            raise ConfigurationError("journal is not open")
        start = time.perf_counter() if self._snapshot_hist is not None else 0.0
        if delta_refs is not None:
            self._delta_refs = dict(delta_refs)
        if detector is not None:
            self._detector_checks = int(detector[0])
            self._detector_alerts = int(detector[1])
        merged: Dict[Address, Tuple[int, int, Tuple[int, ...]]] = dict(links)
        for address, upper in self._leases.items():
            tx, rx, ooo = merged.get(address, (1, 0, ()))
            merged[address] = (max(tx, upper + 1), rx, ooo)
        snap = {
            "node": self._node,
            "r": self._r,
            "k": list(self._identity_keys),
            "keys_now": list(self._own_keys),
            "view": self._view_to_json(self._view) if self._view is not None else None,
            "vector": [int(v) for v in vector],
            "send_seq": int(send_seq),
            "delivered": {s: list(f.as_tuple()) for s, f in self._delivered.items()},
            "links": [
                [_address_to_json(address), {"tx": tx, "rx": rx, "ooo": list(ooo)}]
                for address, (tx, rx, ooo) in merged.items()
            ],
            "delta_refs": [
                [
                    _address_to_json(address),
                    {
                        sender: [
                            int(seq),
                            [int(v) for v in entries],
                            [int(k) for k in keys],
                        ]
                        for sender, (seq, entries, keys) in senders.items()
                    },
                ]
                for address, senders in self._delta_refs.items()
            ],
            "detector": [self._detector_checks, self._detector_alerts],
        }
        tmp_path = self.snapshot_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(snap, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.snapshot_path)
        # The WAL's contents are folded in; restart it.  Leases persist
        # inside the snapshot's link states, so they need no re-logging.
        self._wal.close()
        self._wal = open(self.wal_path, "w", encoding="utf-8")
        self._append({"t": "open", "node": self._node, "r": self._r,
                      "k": list(self._identity_keys)}, count=False)
        self._records_since_snapshot = 0
        self.snapshots_written += 1
        if self._snapshot_hist is not None:
            self._snapshot_hist.observe(time.perf_counter() - start)

    def delivered_frontiers(self) -> Frontiers:
        """Current per-sender delivery coverage (journal's view)."""
        return {s: f.as_tuple() for s, f in self._delivered.items()}

    def close(self) -> None:
        """Release the WAL handle.  Deliberately no snapshot: crash-only
        design — shutdown and crash take the identical recovery path."""
        if self._wal is not None:
            self._wal.close()
            self._wal = None
