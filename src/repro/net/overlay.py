"""Bounded-fanout relay overlay: dissemination without the full mesh.

The mesh runtime sends every broadcast as N−1 unicasts over N−1
reliable sessions, so per-node wire cost and session state grow with
cluster size.  The paper's causal layer never needed the mesh — its
timestamps carry the sender keys, so *any* dissemination substrate that
eventually gets every message everywhere will do.  This module provides
the scalable one, following Eugster et al.'s lightweight probabilistic
broadcast (lpbcast) and Nédelec et al.'s relay-based causal broadcast
(see PAPERS.md), promoted into the live runtime from the simulator's
:class:`repro.sim.partialview.PartialViewGossip`:

* every node maintains a **bounded partial view** (``view_size``
  entries) instead of global membership, seeded from whatever peers it
  learns about (explicit ``add_peer``, the membership layer's view);
* a broadcast is pushed as a RELAY envelope to ``fanout`` targets drawn
  from the view; receivers push it on to ``fanout`` of *their* targets
  on first intake and never again (**infect-and-die** — dedup rides the
  endpoint's existing SeenFilter watermark, keyed on the causal
  ``(origin, seq)`` carried in the envelope header);
* each envelope **piggybacks** a small sample of the relayer's view;
  receivers merge it with probability ``merge_probability`` — the
  lpbcast throttle that keeps one chatty node from colonising every
  view (the simulator documents the rich-get-richer collapse when the
  throttle is too eager; :meth:`PartialView.sample_diversity` makes the
  live counterpart observable);
* the relay wave reaches (1 − e^{-fanout}) of the swarm in O(log N)
  hops with high probability; the existing **anti-entropy digests**
  (sent to the bounded view, not the mesh) heal the probabilistic tail.

Per-broadcast wire cost at any single node is therefore O(fanout), and
session state is bounded by the view plus gossip in-degree — neither
grows with N.  The tradeoff is aggregate redundancy: the swarm as a
whole transmits ~fanout copies of each message where the mesh sends
exactly one per link (see docs/DESIGN.md for the full table).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from random import Random
from typing import Callable, Hashable, Iterable, List, Optional, Tuple

from repro.core.codec import MemberRecord
from repro.core.errors import ConfigurationError

__all__ = ["OverlayStats", "PartialView"]

Address = Hashable
LiveFilter = Callable[[Address], bool]

#: Relay envelopes above this hop count are delivered but not forwarded —
#: a backstop against pathological view topologies (a healthy wave needs
#: ~log_fanout(N) hops; 32 covers any plausible swarm many times over).
DEFAULT_MAX_HOPS = 32

#: Recent piggyback-sample window used for the diversity gauge.
_DIVERSITY_WINDOW = 256


@dataclass
class OverlayStats:
    """Operational counters of one node's overlay participation.

    ``duplicate-suppression rate`` is ``relay_duplicates /
    (relay_first_intake + relay_duplicates)`` — the fraction of incoming
    relay copies the SeenFilter absorbed without re-forwarding (the cost
    of gossip redundancy, bounded by fanout).
    """

    relay_pushes: int = 0
    relay_first_intake: int = 0
    relay_duplicates: int = 0
    relay_forwarded: int = 0
    merges_applied: int = 0
    merges_skipped: int = 0
    view_changes: int = 0
    evictions: int = 0


class PartialView:
    """A bounded, gossip-maintained membership sample (lpbcast-style).

    Holds at most ``view_size`` ``(node_id, address)`` entries, never
    including the local node.  Three maintenance paths:

    * :meth:`add` — authoritative seeding (explicit peers, membership
      view installs): always applied, replacing a random slot when full;
    * :meth:`merge_sample` — piggybacked gossip: applied with
      probability ``merge_probability`` per envelope (the throttle that
      prevents rich-get-richer view collapse);
    * :meth:`discard` — eviction of quarantined or departed peers.

    Target selection (:meth:`push_targets`) draws ``fanout`` distinct
    entries uniformly from the view; an optional live-filter excludes
    quarantined addresses at selection time.

    Args:
        local_id: this node's sender id (kept out of the view and
            stamped on outgoing gossip samples).
        fanout: relay targets per push.
        view_size: bound on the partial view (must be >= fanout).
        piggyback_size: view entries sampled into each outgoing envelope.
        merge_probability: chance a received sample is folded in.
        max_hops: forwarding cutoff carried into relay decisions.
        seed: RNG seed; defaults to a stable hash of ``local_id`` so a
            swarm of nodes does not gossip in lockstep while any single
            node stays reproducible across runs.
    """

    def __init__(
        self,
        local_id: Hashable,
        fanout: int = 3,
        view_size: int = 12,
        piggyback_size: int = 3,
        merge_probability: float = 0.25,
        max_hops: int = DEFAULT_MAX_HOPS,
        seed: Optional[int] = None,
    ) -> None:
        if fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
        if view_size < fanout:
            raise ConfigurationError(
                f"view_size ({view_size}) must be >= fanout ({fanout})"
            )
        if piggyback_size < 0:
            raise ConfigurationError(
                f"piggyback_size must be >= 0, got {piggyback_size}"
            )
        if not 0.0 <= merge_probability <= 1.0:
            raise ConfigurationError(
                f"merge_probability must lie in [0, 1], got {merge_probability}"
            )
        if not 1 <= max_hops <= 255:
            raise ConfigurationError(
                f"max_hops must lie in [1, 255], got {max_hops}"
            )
        self.fanout = fanout
        self.view_size = view_size
        self.piggyback_size = piggyback_size
        self.merge_probability = merge_probability
        self.max_hops = max_hops
        self._local_id = str(local_id)
        self._local_address: Optional[Address] = None
        if seed is None:
            seed = zlib.crc32(self._local_id.encode("utf-8"))
        self._rng = Random(seed)
        # address -> node_id ("" until gossip teaches us the id).
        self._entries: dict = {}
        # Rolling window of gossiped ids, for the diversity gauge: under
        # a rich-get-richer collapse a handful of ids dominate incoming
        # samples and the distinct ratio sinks towards 1/window.
        self._sample_window: List[str] = []
        self.stats = OverlayStats()

    # ------------------------------------------------------------------
    # view maintenance
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: Address) -> bool:
        return address in self._entries

    def set_local_address(self, address: Address) -> None:
        """Learn the local transport address (stamped on gossip samples
        so our id propagates; also self-excluded from the view)."""
        self._local_address = address
        if self.discard(address):
            self.stats.view_changes += 1

    def add(self, address: Address, node_id: str = "") -> bool:
        """Authoritatively admit (or relabel) one entry; True on change.

        When the view is full a uniformly random victim is replaced —
        the memoryless slot policy lpbcast uses, which keeps the view a
        fair sample of everything ever offered instead of an LRU of the
        loudest peers.
        """
        if address is None or address == self._local_address:
            return False
        node_id = str(node_id) if node_id else ""
        if node_id == self._local_id:
            return False
        current = self._entries.get(address)
        if current is not None:
            if node_id and current != node_id:
                self._entries[address] = node_id
                return True
            return False
        if len(self._entries) >= self.view_size:
            victim = self._rng.choice(list(self._entries))
            del self._entries[victim]
        self._entries[address] = node_id
        self.stats.view_changes += 1
        return True

    def discard(self, address: Address) -> bool:
        """Drop one entry (quarantine eviction, membership departure)."""
        if self._entries.pop(address, None) is None:
            return False
        self.stats.evictions += 1
        return True

    def merge_sample(
        self,
        sample: Iterable[MemberRecord],
        exclude: Tuple[Address, ...] = (),
    ) -> bool:
        """Fold a piggybacked view sample in, throttled; True if merged.

        One probability draw covers the whole envelope (matching the
        simulator), and the diversity window records the sample either
        way — a collapse must be visible even while the throttle holds.
        """
        recorded = False
        for record in sample:
            label = record.node_id or str(record.address)
            self._sample_window.append(label)
            recorded = True
        if recorded:
            del self._sample_window[:-_DIVERSITY_WINDOW]
        if self._rng.random() >= self.merge_probability:
            self.stats.merges_skipped += 1
            return False
        merged = False
        for record in sample:
            if record.address in exclude:
                continue
            if self.add(record.address, record.node_id):
                merged = True
        self.stats.merges_applied += 1
        return merged

    # ------------------------------------------------------------------
    # target selection
    # ------------------------------------------------------------------

    def _eligible(
        self,
        exclude: Tuple[Address, ...],
        live_filter: Optional[LiveFilter],
    ) -> List[Address]:
        return [
            address
            for address in self._entries
            if address not in exclude
            and (live_filter is None or live_filter(address))
        ]

    def push_targets(
        self,
        exclude: Tuple[Address, ...] = (),
        live_filter: Optional[LiveFilter] = None,
    ) -> List[Address]:
        """Up to ``fanout`` distinct live targets for one relay push."""
        candidates = self._eligible(exclude, live_filter)
        if len(candidates) <= self.fanout:
            return candidates
        return self._rng.sample(candidates, self.fanout)

    def digest_targets(
        self, live_filter: Optional[LiveFilter] = None
    ) -> List[Address]:
        """Every live view entry — the bounded anti-entropy peer set."""
        return self._eligible((), live_filter)

    def gossip_sample(self) -> Tuple[MemberRecord, ...]:
        """The membership sample to piggyback on an outgoing envelope:
        up to ``piggyback_size`` random view entries plus ourselves (how
        a new node's address spreads beyond its seed peers)."""
        sample: List[MemberRecord] = []
        if self._entries and self.piggyback_size:
            count = min(self.piggyback_size, len(self._entries))
            for address in self._rng.sample(list(self._entries), count):
                sample.append(
                    MemberRecord(
                        node_id=self._entries[address], address=address
                    )
                )
        if self._local_address is not None:
            sample.append(
                MemberRecord(node_id=self._local_id, address=self._local_address)
            )
        return tuple(sample)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def entries(self) -> Tuple[MemberRecord, ...]:
        """The current view as records (tests and gauges)."""
        return tuple(
            MemberRecord(node_id=node_id, address=address)
            for address, node_id in self._entries.items()
        )

    def addresses(self) -> List[Address]:
        return list(self._entries)

    def sample_diversity(self) -> float:
        """Distinct ids in the recent piggyback-sample stream, as a
        fraction of the window (1.0 until the first sample arrives).

        The live early-warning for the simulator's documented
        rich-get-richer view collapse: when a few popular nodes take
        over the gossip, this sinks long before delivery suffers.
        """
        if not self._sample_window:
            return 1.0
        return len(set(self._sample_window)) / len(self._sample_window)

    def bind_metrics(self, registry) -> None:
        """Export the overlay tallies through a pull collector:
        ``repro_relay_*_total`` counters, the view-size and
        sample-diversity gauges."""
        counters = {
            name: registry.counter(f"repro_{name}_total")
            for name in (
                "relay_pushes",
                "relay_first_intake",
                "relay_duplicates",
                "relay_forwarded",
            )
        }
        merges_applied = registry.counter("repro_overlay_merges_applied_total")
        merges_skipped = registry.counter("repro_overlay_merges_skipped_total")
        view_changes = registry.counter("repro_overlay_view_changes_total")
        evictions = registry.counter("repro_overlay_evictions_total")
        view_size = registry.gauge("repro_overlay_view_size")
        diversity = registry.gauge("repro_overlay_sample_diversity")
        suppression = registry.gauge("repro_relay_duplicate_suppression_rate")

        def collect() -> None:
            for name, counter in counters.items():
                counter.set(getattr(self.stats, name))
            merges_applied.set(self.stats.merges_applied)
            merges_skipped.set(self.stats.merges_skipped)
            view_changes.set(self.stats.view_changes)
            evictions.set(self.stats.evictions)
            view_size.set(len(self._entries))
            diversity.set(self.sample_diversity())
            copies = self.stats.relay_first_intake + self.stats.relay_duplicates
            suppression.set(
                self.stats.relay_duplicates / copies if copies else 0.0
            )

        registry.register_collector(collect)
