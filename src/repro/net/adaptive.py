"""Self-tuning (R, K): the adaptive clock-sizing controller.

Section 5.3 of the paper dimensions K *once*, from a guess of the
in-flight concurrency X, and Figures 4-5 show the penalty when reality
disagrees with the guess: P_err(R, K, X) = (1 - (1 - 1/R)^(KX))^K takes
off as soon as traffic outgrows the planned geometry.  This module
closes that loop at runtime (DESIGN.md §11):

* a :class:`ConcurrencyEstimator` turns the node's own metrics stream
  (the ``repro_delivery_wait_seconds`` histogram, the delivered counter
  and the pending-depth gauge from ``repro.obs``) into a windowed
  Little's-law estimate X̂ = delivery rate x mean delivery wait;
* an :class:`EpochPlanner` compares the measured alert rate against a
  target band and, when the band is breached, asks
  :func:`repro.core.theory.optimal_k_int` for the integer optimum at X̂
  — guarded by the same hysteresis rule the simulator's adaptive mode
  uses (P_err is nearly flat around its optimum, so adjacent-K flapping
  is pure churn) and a cooldown so one burst cannot thrash the group;
* an :class:`AdaptiveClockController` ties both to a live node: every
  ``interval`` seconds it samples the registry, and when this node is
  the acting coordinator (the PR 7 deterministic rule in
  ``net/membership.py``) it renegotiates the geometry for the whole
  group via :meth:`GroupMembership.propose_epoch` — a new epoch that
  rides the wire header (PROTOCOL.md §11), re-tiles key assignments and
  persists in the journal so restarts rejoin on the current geometry.

The estimator and planner are deliberately pure (cumulative samples in,
decision out) so benchmarks and tests can drive them from simulation
telemetry without an event loop; only the controller touches asyncio.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.core.theory import optimal_k_int, p_error

__all__ = [
    "AdaptivePolicy",
    "TelemetrySample",
    "TelemetryWindow",
    "ConcurrencyEstimator",
    "EpochPlanner",
    "AdaptiveClockController",
]


@dataclass(frozen=True)
class AdaptivePolicy:
    """Tuning knobs for the adaptive clock-sizing loop.

    Args:
        interval: seconds between controller decisions.
        band: target alert-rate band ``(low, high)`` as alerts per
            delivery.  Inside the band the controller holds the current
            geometry; outside it, it re-tiles to theory's optimum.
        k_max: hard upper bound on the negotiated K (the simulator's
            adaptive mode uses the same cap).
        hysteresis: a bump must shrink the predicted P_err below
            ``hysteresis * P_err(current)`` to be worth a fleet-wide
            re-key; 1.0 disables the guard.
        cooldown: minimum seconds between two epoch bumps.
        x_floor: X̂ estimates below this are treated as "no traffic"
            and never trigger a bump.
        min_window: minimum deliveries a sampling window must contain
            before its estimate is trusted.
    """

    interval: float = 5.0
    band: Tuple[float, float] = (0.0, 0.05)
    k_max: int = 16
    hysteresis: float = 0.8
    cooldown: float = 30.0
    x_floor: float = 0.1
    min_window: int = 20

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError(
                f"adaptive interval must be > 0, got {self.interval}"
            )
        low, high = self.band
        if not (0.0 <= low <= high <= 1.0):
            raise ConfigurationError(
                f"alert-rate band must satisfy 0 <= low <= high <= 1, "
                f"got ({low}, {high})"
            )
        if self.k_max < 1:
            raise ConfigurationError(f"k_max must be >= 1, got {self.k_max}")
        if not 0.0 < self.hysteresis <= 1.0:
            raise ConfigurationError(
                f"hysteresis must lie in (0, 1], got {self.hysteresis}"
            )
        if self.cooldown < 0:
            raise ConfigurationError(
                f"cooldown must be >= 0, got {self.cooldown}"
            )
        if self.min_window < 1:
            raise ConfigurationError(
                f"min_window must be >= 1, got {self.min_window}"
            )


@dataclass(frozen=True)
class TelemetrySample:
    """One cumulative reading of the metrics a node already exports.

    All fields are lifetime totals (counter/histogram semantics); the
    estimator differences successive samples into windows, so feeding it
    the raw registry snapshot is enough — no extra bookkeeping in the
    hot path.
    """

    now: float
    """Sample timestamp in seconds (monotonic)."""

    delivered_total: float
    """Messages delivered so far (``repro_endpoint_delivered_total``)."""

    wait_sum: float
    """Total seconds spent waiting for delivery
    (``repro_delivery_wait_seconds`` histogram sum)."""

    wait_count: float
    """Observations in the delivery-wait histogram."""

    pending_depth: float = 0.0
    """Instantaneous pending-buffer depth (``repro_pending_depth``)."""

    alerts_total: float = 0.0
    """Detector alerts so far (``repro_detector_alerts_total``)."""

    checks_total: float = 0.0
    """Detector checks so far (``repro_detector_checks_total``)."""

    @classmethod
    def from_snapshot(cls, snapshot: dict, now: float) -> "TelemetrySample":
        """Build a sample from a ``MetricsRegistry.snapshot()`` dict
        using the live node's series names."""
        counters = snapshot.get("counters", {})
        gauges = snapshot.get("gauges", {})
        wait = snapshot.get("histograms", {}).get(
            "repro_delivery_wait_seconds", {}
        )
        return cls(
            now=now,
            delivered_total=counters.get("repro_endpoint_delivered_total", 0.0),
            wait_sum=wait.get("sum", 0.0),
            wait_count=wait.get("count", 0),
            pending_depth=gauges.get("repro_pending_depth", 0.0),
            alerts_total=counters.get("repro_detector_alerts_total", 0.0),
            checks_total=counters.get("repro_detector_checks_total", 0.0),
        )


@dataclass(frozen=True)
class TelemetryWindow:
    """The differenced view of two successive samples."""

    elapsed: float
    """Window length in seconds."""

    deliveries: float
    """Deliveries inside the window."""

    delivery_rate: float
    """Deliveries per second."""

    mean_wait: float
    """Mean delivery wait (seconds) inside the window."""

    x_estimate: float
    """Estimated in-flight concurrency X̂ (see
    :class:`ConcurrencyEstimator`)."""

    alert_rate: float
    """Detector alerts per check inside the window (falls back to
    alerts per delivery when the detector exports no check counter)."""


class ConcurrencyEstimator:
    """Little's-law concurrency estimate from the node's own telemetry.

    Over a sampling window, X̂ = (deliveries / elapsed) x mean delivery
    wait — the average number of messages simultaneously in flight
    through the causal-delivery path.  The push-style wait histogram
    only sees the receiver-side wait, so the instantaneous pending
    depth serves as a floor; the planner's alert-rate band absorbs the
    residual underestimate (an undersized X̂ shows up as an
    out-of-band alert rate and still triggers a correction).
    """

    def __init__(self, min_window: int = 20) -> None:
        if min_window < 1:
            raise ConfigurationError(
                f"min_window must be >= 1, got {min_window}"
            )
        self._min_window = min_window
        self._last: Optional[TelemetrySample] = None

    def update(self, sample: TelemetrySample) -> Optional[TelemetryWindow]:
        """Fold in one cumulative sample; return the window against the
        previous one, or ``None`` while the window is still too thin to
        trust (first sample, zero elapsed time, too few deliveries, or
        a counter reset after a restart)."""
        previous, self._last = self._last, sample
        if previous is None:
            return None
        elapsed = sample.now - previous.now
        deliveries = sample.delivered_total - previous.delivered_total
        wait_sum = sample.wait_sum - previous.wait_sum
        wait_count = sample.wait_count - previous.wait_count
        alerts = sample.alerts_total - previous.alerts_total
        checks = sample.checks_total - previous.checks_total
        if elapsed <= 0 or deliveries < 0 or wait_count < 0 or checks < 0:
            return None  # clock went backwards or counters reset
        if deliveries < self._min_window:
            return None
        rate = deliveries / elapsed
        mean_wait = wait_sum / wait_count if wait_count else 0.0
        x_estimate = max(rate * mean_wait, sample.pending_depth)
        denominator = checks if checks > 0 else deliveries
        alert_rate = alerts / denominator if denominator > 0 else 0.0
        return TelemetryWindow(
            elapsed=elapsed,
            deliveries=deliveries,
            delivery_rate=rate,
            mean_wait=mean_wait,
            x_estimate=x_estimate,
            alert_rate=alert_rate,
        )


class EpochPlanner:
    """Pure decision core: telemetry window in, target K (or hold) out.

    The rule, in order:

    1. hold while the cooldown since the last accepted bump runs;
    2. hold when X̂ is below the policy floor (idle group);
    3. hold while the measured alert rate sits inside the target band —
       the geometry is doing its job, re-keying buys nothing;
    4. outside the band, ask theory for ``optimal_k_int(R, X̂)``
       (clamped to ``k_max``); hold if it matches the current K;
    5. hysteresis: the move must shrink the predicted P_err at X̂ below
       ``hysteresis x P_err(current K, X̂)``, or the bump is flapping
       around a flat optimum and is rejected.
    """

    def __init__(self, r: int, policy: Optional[AdaptivePolicy] = None) -> None:
        if r < 1:
            raise ConfigurationError(f"r must be >= 1, got {r}")
        self.r = r
        self.policy = policy if policy is not None else AdaptivePolicy()
        self._last_bump: Optional[float] = None

    @property
    def k_cap(self) -> int:
        """The effective upper bound on negotiated K."""
        return min(self.r, self.policy.k_max)

    def decide(
        self, current_k: int, window: Optional[TelemetryWindow], now: float
    ) -> Optional[int]:
        """Return the K to re-tile to, or ``None`` to hold."""
        if window is None:
            return None
        policy = self.policy
        if (
            self._last_bump is not None
            and now - self._last_bump < policy.cooldown
        ):
            return None
        if window.x_estimate < policy.x_floor:
            return None
        low, high = policy.band
        if low <= window.alert_rate <= high:
            return None
        target = optimal_k_int(self.r, window.x_estimate, k_max=self.k_cap)
        if target == current_k:
            return None
        current_err = p_error(self.r, current_k, window.x_estimate)
        target_err = p_error(self.r, target, window.x_estimate)
        if target_err >= policy.hysteresis * current_err:
            return None
        return target

    def record_bump(self, now: float) -> None:
        """Arm the cooldown after an accepted bump."""
        self._last_bump = now


class AdaptiveClockController:
    """Ties the estimator and planner to a live node.

    Every ``policy.interval`` seconds the controller snapshots the
    node's metrics registry, folds the reading into the estimator, and
    asks the planner for a verdict.  Only the acting coordinator ever
    *acts* on one — it calls :meth:`GroupMembership.propose_epoch`,
    which re-tiles key assignments, installs and announces the bumped
    view, and persists the epoch in the journal.  Every other member
    keeps estimating (so a coordinator handover starts warm) but holds.

    The controller exports its own telemetry:

    * ``repro_adaptive_x_estimate`` — the latest X̂;
    * ``repro_adaptive_alert_rate`` — the latest windowed alert rate;
    * ``repro_adaptive_k_target`` — the planner's last verdict (the
      current K while holding);
    * ``repro_adaptive_decisions_total`` / ``repro_adaptive_bumps_total``
      — loop iterations with a usable window, and accepted bumps.
    """

    def __init__(self, node, policy: Optional[AdaptivePolicy] = None) -> None:
        self.node = node
        self.policy = policy if policy is not None else AdaptivePolicy()
        self.estimator = ConcurrencyEstimator(min_window=self.policy.min_window)
        self.planner = EpochPlanner(node.endpoint.clock.r, self.policy)
        self._task: Optional[asyncio.Task] = None
        registry = node.metrics
        self._x_gauge = registry.gauge("repro_adaptive_x_estimate")
        self._alert_gauge = registry.gauge("repro_adaptive_alert_rate")
        self._target_gauge = registry.gauge("repro_adaptive_k_target")
        self._decisions = registry.counter("repro_adaptive_decisions_total")
        self._bumps = registry.counter("repro_adaptive_bumps_total")

    def step(self, now: float) -> Optional[int]:
        """One synchronous control iteration; returns the proposed K
        when this node is the coordinator and a bump was accepted."""
        node = self.node
        sample = TelemetrySample.from_snapshot(node.metrics.snapshot(), now)
        window = self.estimator.update(sample)
        if window is None:
            return None
        self._decisions.inc()
        self._x_gauge.set(window.x_estimate)
        self._alert_gauge.set(window.alert_rate)
        current_k = node.endpoint.clock.k
        target = self.planner.decide(current_k, window, now)
        self._target_gauge.set(target if target is not None else current_k)
        membership = node.membership
        if target is None or membership is None or not membership.is_coordinator():
            return None
        view = membership.propose_epoch(target)
        if view is None:
            return None
        self.planner.record_bump(now)
        self._bumps.inc()
        node.trace.emit(
            "adaptive_bump",
            ts=now,
            epoch=view.epoch,
            k=target,
            x=round(window.x_estimate, 3),
            alert_rate=round(window.alert_rate, 6),
        )
        return target

    async def run(self) -> None:
        """The periodic loop (cancelled by :meth:`stop`)."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.policy.interval)
            self.step(loop.time())

    def start(self) -> None:
        """Arm the loop task (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self.run())

    async def stop(self) -> None:
        """Cancel and reap the loop task."""
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
