"""UDP transports: real datagrams for the causal broadcast peer.

Two implementations share the wire format and the
:class:`~repro.net.peer.Transport` interface:

* :class:`UdpTransport` — the straightforward asyncio datagram endpoint.
  One event-loop wakeup and one ``recvfrom`` syscall per datagram in,
  one ``sendto`` per datagram out.
* :class:`BatchedUdpTransport` — a non-blocking socket registered
  directly with the event loop.  On readable it drains up to
  ``rx_batch`` datagrams in one wakeup (``recvfrom_into`` over a ring of
  preallocated buffers — zero allocation per datagram) and hands the
  whole batch to one receiver callback as borrowed ``memoryview`` s; on
  send it queues datagrams and flushes them in a tight ``sendto`` burst
  once per loop tick (sendmmsg-style batching at the Python level, with
  an optional real ``sendmmsg(2)`` fast path behind the ``mmsg`` flag).

**Buffer lifetime.**  The views a batched receive callback sees alias
the transport's reusable ring; they are valid only until the callback
returns.  Consumers that keep datagram bytes past the callback (the
node's store/journal, retransmit queues) must copy first —
:func:`repro.core.codec.retain` is the blessed choke point.  See
DESIGN.md §7.

UDP is fire-and-forget — exactly the unreliable substrate the paper
mentions when motivating the recent-messages list of Algorithm 5 — so
deployments layer :class:`repro.net.session.ReliableSession` (acks,
NACK-driven retransmission, anti-entropy) on top; the protocol
endpoint's duplicate suppression absorbs any retransmissions that slip
through anyway.
"""

from __future__ import annotations

import asyncio
import socket
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.core.codec import Buffer
from repro.core.errors import ConfigurationError
from repro.net.peer import Transport

__all__ = ["UdpTransport", "BatchedUdpTransport", "IoStats"]

HostPort = Tuple[str, int]
Batch = List[Tuple[Buffer, HostPort]]

# Conservative bound: stay under the common 64 KiB UDP datagram ceiling.
# The session's ``coalesce_mtu`` (frame-coalescing budget) must stay at
# or below this, or a flushed BATCH datagram would be rejected here; the
# 1400 B default leaves three orders of magnitude of headroom.
_MAX_DATAGRAM = 60_000


class _Protocol(asyncio.DatagramProtocol):
    def __init__(self) -> None:
        self.receiver: Optional[Callable[[bytes, HostPort], None]] = None
        self.closed: asyncio.Future = asyncio.get_event_loop().create_future()

    def datagram_received(self, data: bytes, addr) -> None:
        # Thread the sender address through: sessions attribute datagrams
        # to peers (per-peer acks and retransmit state) by this value.
        if self.receiver is not None:
            self.receiver(data, (addr[0], addr[1]))

    def connection_lost(self, exc) -> None:
        if not self.closed.done():
            self.closed.set_result(None)


class UdpTransport(Transport):
    """A bound UDP socket speaking the library's wire format.

    Use :meth:`create` (async) to construct::

        transport = await UdpTransport.create(port=0)   # ephemeral port
        print(transport.local_address)
    """

    def __init__(self, transport: asyncio.DatagramTransport, protocol: _Protocol) -> None:
        self._transport = transport
        self._protocol = protocol

    @classmethod
    async def create(cls, host: str = "127.0.0.1", port: int = 0) -> "UdpTransport":
        """Bind a datagram endpoint; ``port=0`` picks an ephemeral port."""
        loop = asyncio.get_running_loop()
        transport, protocol = await loop.create_datagram_endpoint(
            _Protocol, local_addr=(host, port)
        )
        return cls(transport, protocol)

    @property
    def local_address(self) -> HostPort:
        """The bound ``(host, port)``."""
        sock = self._transport.get_extra_info("sockname")
        return (sock[0], sock[1])

    async def send(self, destination: HostPort, data: bytes) -> None:
        if len(data) > _MAX_DATAGRAM:
            raise ConfigurationError(
                f"datagram of {len(data)} bytes exceeds the {_MAX_DATAGRAM} B "
                "UDP bound; shrink R or the payload, or use a stream transport"
            )
        self._transport.sendto(data, destination)

    def set_receiver(self, callback: Callable[[bytes, HostPort], None]) -> None:
        self._protocol.receiver = callback

    async def close(self) -> None:
        self._transport.close()
        # Wait for the socket to actually release: a crash-recovery
        # restart rebinds the same port immediately, and the datagram
        # transport only closes on a later loop iteration.
        await self._protocol.closed


# ----------------------------------------------------------------------
# Syscall-batched transport
# ----------------------------------------------------------------------

# recvfrom_into needs room for the largest datagram the kernel may hand
# us; a short buffer silently truncates (UDP discards the excess).
_RX_BUFFER_SIZE = 65_535


class IoStats:
    """Per-transport I/O tallies (plain slotted ints, no obs dependency).

    ``rx_wakeups`` counts readable events that yielded at least one
    datagram; ``rx_datagrams / rx_wakeups`` is the batching win the
    ioloop benchmark gates on.  ``rx_budget_exhausted`` counts wakeups
    that hit the ``rx_batch`` budget with data still queued (the loop
    re-fires — level-triggered — so nothing is lost, but a high rate
    means the budget is the bottleneck).  ``tx_mmsg_datagrams`` counts
    datagrams that left via real ``sendmmsg(2)`` bursts.
    """

    __slots__ = (
        "rx_wakeups",
        "rx_datagrams",
        "rx_bytes",
        "rx_batch_max",
        "rx_budget_exhausted",
        "tx_flushes",
        "tx_datagrams",
        "tx_bytes",
        "tx_batch_max",
        "tx_blocked",
        "tx_mmsg_calls",
        "tx_mmsg_datagrams",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class _SendmmsgBurst:
    """ctypes binding for ``sendmmsg(2)``: many datagrams, one syscall.

    Linux + AF_INET only; any failure to construct or to resolve a
    destination disables the fast path for good and the caller falls
    back to the Python-level ``sendto`` burst.  Addresses must be
    dotted-quad IPv4 (``inet_aton``); hostnames punt to the fallback.
    """

    def __init__(self, fd: int) -> None:
        import ctypes
        import ctypes.util

        libc_name = ctypes.util.find_library("c")
        if libc_name is None:
            raise OSError("no libc")
        libc = ctypes.CDLL(libc_name, use_errno=True)
        self._sendmmsg = libc.sendmmsg  # AttributeError when unsupported
        self._ctypes = ctypes
        self._fd = fd

        class SockaddrIn(ctypes.Structure):
            _fields_ = [
                ("sin_family", ctypes.c_uint16),
                ("sin_port", ctypes.c_uint16),
                ("sin_addr", ctypes.c_uint32),
                ("sin_zero", ctypes.c_char * 8),
            ]

        class Iovec(ctypes.Structure):
            _fields_ = [
                ("iov_base", ctypes.c_void_p),
                ("iov_len", ctypes.c_size_t),
            ]

        class Msghdr(ctypes.Structure):
            _fields_ = [
                ("msg_name", ctypes.c_void_p),
                ("msg_namelen", ctypes.c_uint32),
                ("msg_iov", ctypes.POINTER(Iovec)),
                ("msg_iovlen", ctypes.c_size_t),
                ("msg_control", ctypes.c_void_p),
                ("msg_controllen", ctypes.c_size_t),
                ("msg_flags", ctypes.c_int),
            ]

        class Mmsghdr(ctypes.Structure):
            _fields_ = [("msg_hdr", Msghdr), ("msg_len", ctypes.c_uint32)]

        self._SockaddrIn = SockaddrIn
        self._Iovec = Iovec
        self._Mmsghdr = Mmsghdr

    def send(self, entries: List[Tuple[HostPort, bytes]]) -> int:
        """Send ``entries`` in one syscall; returns how many went out.

        Raises ``OSError``/``ValueError`` on anything unexpected — the
        caller treats that as "disable the fast path", not as loss (the
        unsent tail stays queued).
        """
        ctypes = self._ctypes
        count = len(entries)
        addrs = (self._SockaddrIn * count)()
        iovecs = (self._Iovec * count)()
        msgs = (self._Mmsghdr * count)()
        keepalive = []
        for index, ((host, port), data) in enumerate(entries):
            packed = socket.inet_aton(host)  # ValueError on hostnames
            addr = addrs[index]
            addr.sin_family = socket.AF_INET
            addr.sin_port = socket.htons(port)
            addr.sin_addr = int.from_bytes(packed, "little")
            payload = ctypes.create_string_buffer(bytes(data), len(data))
            keepalive.append(payload)
            iovecs[index].iov_base = ctypes.cast(payload, ctypes.c_void_p)
            iovecs[index].iov_len = len(data)
            hdr = msgs[index].msg_hdr
            hdr.msg_name = ctypes.cast(ctypes.pointer(addr), ctypes.c_void_p)
            hdr.msg_namelen = ctypes.sizeof(addr)
            hdr.msg_iov = ctypes.pointer(iovecs[index])
            hdr.msg_iovlen = 1
        sent = self._sendmmsg(self._fd, msgs, count, 0)
        if sent < 0:
            errno = ctypes.get_errno()
            raise OSError(errno, "sendmmsg failed")
        return sent


class BatchedUdpTransport(Transport):
    """A non-blocking UDP socket draining many datagrams per wakeup.

    Use :meth:`create` (async) to construct.  Two receive modes:

    * :meth:`set_batch_receiver` — one callback per readable event with
      the whole batch ``[(view, addr), ...]``; the views are borrowed
      (see the module docstring).
    * :meth:`set_receiver` — per-datagram compatibility callback.

    Sends queue through :meth:`send_now` (synchronous, no task churn)
    and flush in one burst per loop tick, bounded by ``tx_batch`` per
    pass; the ``Transport.send`` coroutine delegates to it.

    Args:
        rx_batch: max datagrams drained per readable wakeup.
        tx_batch: max datagrams written per flush pass.
        mmsg: try a real ``sendmmsg(2)`` burst (Linux/AF_INET); falls
            back to the ``sendto`` loop silently anywhere it can't work.
    """

    def __init__(
        self,
        sock: socket.socket,
        loop: asyncio.AbstractEventLoop,
        rx_batch: int = 32,
        tx_batch: int = 32,
        mmsg: bool = False,
    ) -> None:
        if rx_batch <= 0:
            raise ConfigurationError(f"rx_batch must be positive, got {rx_batch}")
        if tx_batch <= 0:
            raise ConfigurationError(f"tx_batch must be positive, got {tx_batch}")
        self._sock = sock
        self._loop = loop
        self._rx_batch = rx_batch
        self._tx_batch = tx_batch
        self._rx_buffers = [bytearray(_RX_BUFFER_SIZE) for _ in range(rx_batch)]
        self._receiver: Optional[Callable[[Buffer, HostPort], None]] = None
        self._batch_receiver: Optional[Callable[[Batch], None]] = None
        self._tx_queue: Deque[Tuple[HostPort, bytes]] = deque()
        self._tx_scheduled = False
        self._tx_writer_armed = False
        self._closed = False
        name = sock.getsockname()
        self._local_address: HostPort = (name[0], name[1])
        self.io_stats = IoStats()
        self._rx_histogram = None  # per-wakeup datagram distribution
        self._mmsg: Optional[_SendmmsgBurst] = None
        if mmsg and sock.family == socket.AF_INET:
            try:
                self._mmsg = _SendmmsgBurst(sock.fileno())
            except (OSError, AttributeError):  # pragma: no cover - platform
                self._mmsg = None
        loop.add_reader(sock.fileno(), self._on_readable)

    @classmethod
    async def create(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        rx_batch: int = 32,
        tx_batch: int = 32,
        mmsg: bool = False,
    ) -> "BatchedUdpTransport":
        """Bind a non-blocking socket; ``port=0`` picks an ephemeral port."""
        loop = asyncio.get_running_loop()
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            sock.setblocking(False)
            sock.bind((host, port))
        except BaseException:
            sock.close()
            raise
        return cls(sock, loop, rx_batch=rx_batch, tx_batch=tx_batch, mmsg=mmsg)

    @property
    def local_address(self) -> HostPort:
        """The bound ``(host, port)``; stays readable after close()."""
        return self._local_address

    @property
    def mmsg_active(self) -> bool:
        """Whether the ``sendmmsg(2)`` fast path is armed."""
        return self._mmsg is not None

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def set_receiver(self, callback: Callable[[Buffer, HostPort], None]) -> None:
        self._receiver = callback

    def set_batch_receiver(self, callback: Callable[[Batch], None]) -> None:
        """Install a whole-batch callback (preferred over per-datagram).

        The callback's views are only valid until it returns — the
        buffer ring is recycled on the next readable event.
        """
        self._batch_receiver = callback

    def _on_readable(self) -> None:
        sock = self._sock
        buffers = self._rx_buffers
        budget = self._rx_batch
        batch: Batch = []
        total_bytes = 0
        count = 0
        while count < budget:
            try:
                nbytes, addr = sock.recvfrom_into(buffers[count])
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                # e.g. ECONNREFUSED bounced back on some platforms; the
                # datagram is gone either way, keep draining.
                continue
            batch.append((memoryview(buffers[count])[:nbytes], (addr[0], addr[1])))
            total_bytes += nbytes
            count += 1
        if not batch:
            return
        stats = self.io_stats
        stats.rx_wakeups += 1
        stats.rx_datagrams += count
        stats.rx_bytes += total_bytes
        if count > stats.rx_batch_max:
            stats.rx_batch_max = count
        if count == budget:
            # Level-triggered readiness re-fires the callback for the
            # remainder; the budget only bounds per-wakeup latency.
            stats.rx_budget_exhausted += 1
        if self._rx_histogram is not None:
            self._rx_histogram.observe(count)
        if self._batch_receiver is not None:
            self._batch_receiver(batch)
        elif self._receiver is not None:
            receiver = self._receiver
            for view, sender in batch:
                receiver(view, sender)
        # Invalidate escaped views? No — the contract is documented and
        # cheap; releasing would force a per-datagram allocation again.

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------

    def send_now(self, destination: HostPort, data: bytes) -> None:
        """Queue a datagram for the next flush burst (synchronous).

        The session calls this instead of spawning one task per
        datagram; all sends of a loop tick leave in one tight burst.
        """
        if len(data) > _MAX_DATAGRAM:
            raise ConfigurationError(
                f"datagram of {len(data)} bytes exceeds the {_MAX_DATAGRAM} B "
                "UDP bound; shrink R or the payload, or use a stream transport"
            )
        if self._closed:
            return
        self._tx_queue.append((destination, bytes(data)))
        if not self._tx_scheduled and not self._tx_writer_armed:
            self._tx_scheduled = True
            self._loop.call_soon(self._flush_tx)

    async def send(self, destination: HostPort, data: bytes) -> None:
        self.send_now(destination, data)

    def _flush_tx(self) -> None:
        self._tx_scheduled = False
        if self._closed:
            self._tx_queue.clear()
            return
        queue = self._tx_queue
        if not queue:
            return
        stats = self.io_stats
        stats.tx_flushes += 1
        budget = self._tx_batch
        sent = 0
        blocked = False
        if self._mmsg is not None and len(queue) > 1:
            burst = list(queue)[:budget]
            try:
                done = self._mmsg.send(burst)
            except (OSError, ValueError):
                # Unresolvable address or platform refusal: drop to the
                # sendto loop permanently (the queue is untouched).
                self._mmsg = None
            else:
                for _ in range(done):
                    entry = queue.popleft()
                    stats.tx_bytes += len(entry[1])
                sent += done
                stats.tx_mmsg_calls += 1
                stats.tx_mmsg_datagrams += done
                blocked = done == 0
        if not blocked:
            sock = self._sock
            while queue and sent < budget:
                destination, data = queue[0]
                try:
                    sock.sendto(data, destination)
                except (BlockingIOError, InterruptedError):
                    blocked = True
                    break
                except OSError:
                    queue.popleft()  # unreachable peer: drop, UDP semantics
                    continue
                queue.popleft()
                sent += 1
                stats.tx_bytes += len(data)
        stats.tx_datagrams += sent
        if sent > stats.tx_batch_max:
            stats.tx_batch_max = sent
        if not queue:
            return
        if blocked:
            stats.tx_blocked += 1
            if not self._tx_writer_armed:
                self._tx_writer_armed = True
                self._loop.add_writer(self._sock.fileno(), self._on_writable)
        elif not self._tx_scheduled:
            # Budget exhausted with queue left: yield to the loop (let
            # reads interleave) and continue next tick.
            self._tx_scheduled = True
            self._loop.call_soon(self._flush_tx)

    def _on_writable(self) -> None:
        self._loop.remove_writer(self._sock.fileno())
        self._tx_writer_armed = False
        self._flush_tx()

    # ------------------------------------------------------------------
    # observability / lifecycle
    # ------------------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Export the I/O tallies through a ``repro.obs`` registry.

        Counters are pull-style (synced from :class:`IoStats` by a
        collector at snapshot time); only the per-wakeup batch-size
        histogram is push-style, one ``observe()`` per wakeup — not per
        datagram.
        """
        self._rx_histogram = registry.histogram(
            "repro_io_rx_batch_datagrams",
            bounds=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        )
        names = (
            "rx_wakeups",
            "rx_datagrams",
            "rx_bytes",
            "rx_budget_exhausted",
            "tx_flushes",
            "tx_datagrams",
            "tx_bytes",
            "tx_blocked",
            "tx_mmsg_calls",
            "tx_mmsg_datagrams",
        )
        counters = {name: registry.counter(f"repro_io_{name}_total") for name in names}
        rx_peak = registry.gauge("repro_io_rx_batch_peak")
        tx_peak = registry.gauge("repro_io_tx_batch_peak")

        def collect() -> None:
            stats = self.io_stats
            for name, counter in counters.items():
                counter.set(getattr(stats, name))
            rx_peak.set(stats.rx_batch_max)
            tx_peak.set(stats.tx_batch_max)

        registry.register_collector(collect)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        fd = self._sock.fileno()
        if fd >= 0:
            self._loop.remove_reader(fd)
            if self._tx_writer_armed:
                self._loop.remove_writer(fd)
                self._tx_writer_armed = False
        self._tx_queue.clear()
        # Raw close releases the port synchronously — a crash-recovery
        # restart may rebind immediately.
        self._sock.close()
