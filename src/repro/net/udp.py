"""UDP transport: real datagrams for the causal broadcast peer.

Binds an asyncio datagram endpoint (loopback by default) and ships
encoded messages to explicit ``(host, port)`` peer addresses.  UDP is
fire-and-forget — exactly the unreliable substrate the paper mentions
when motivating the recent-messages list of Algorithm 5 — so deployments
layer :class:`repro.net.session.ReliableSession` (acks, NACK-driven
retransmission, anti-entropy) on top; the protocol endpoint's duplicate
suppression absorbs any retransmissions that slip through anyway.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional, Tuple

from repro.core.errors import ConfigurationError
from repro.net.peer import Transport

__all__ = ["UdpTransport"]

HostPort = Tuple[str, int]

# Conservative bound: stay under the common 64 KiB UDP datagram ceiling.
# The session's ``coalesce_mtu`` (frame-coalescing budget) must stay at
# or below this, or a flushed BATCH datagram would be rejected here; the
# 1400 B default leaves three orders of magnitude of headroom.
_MAX_DATAGRAM = 60_000


class _Protocol(asyncio.DatagramProtocol):
    def __init__(self) -> None:
        self.receiver: Optional[Callable[[bytes, HostPort], None]] = None
        self.closed: asyncio.Future = asyncio.get_event_loop().create_future()

    def datagram_received(self, data: bytes, addr) -> None:
        # Thread the sender address through: sessions attribute datagrams
        # to peers (per-peer acks and retransmit state) by this value.
        if self.receiver is not None:
            self.receiver(data, (addr[0], addr[1]))

    def connection_lost(self, exc) -> None:
        if not self.closed.done():
            self.closed.set_result(None)


class UdpTransport(Transport):
    """A bound UDP socket speaking the library's wire format.

    Use :meth:`create` (async) to construct::

        transport = await UdpTransport.create(port=0)   # ephemeral port
        print(transport.local_address)
    """

    def __init__(self, transport: asyncio.DatagramTransport, protocol: _Protocol) -> None:
        self._transport = transport
        self._protocol = protocol

    @classmethod
    async def create(cls, host: str = "127.0.0.1", port: int = 0) -> "UdpTransport":
        """Bind a datagram endpoint; ``port=0`` picks an ephemeral port."""
        loop = asyncio.get_running_loop()
        transport, protocol = await loop.create_datagram_endpoint(
            _Protocol, local_addr=(host, port)
        )
        return cls(transport, protocol)

    @property
    def local_address(self) -> HostPort:
        """The bound ``(host, port)``."""
        sock = self._transport.get_extra_info("sockname")
        return (sock[0], sock[1])

    async def send(self, destination: HostPort, data: bytes) -> None:
        if len(data) > _MAX_DATAGRAM:
            raise ConfigurationError(
                f"datagram of {len(data)} bytes exceeds the {_MAX_DATAGRAM} B "
                "UDP bound; shrink R or the payload, or use a stream transport"
            )
        self._transport.sendto(data, destination)

    def set_receiver(self, callback: Callable[[bytes, HostPort], None]) -> None:
        self._protocol.receiver = callback

    async def close(self) -> None:
        self._transport.close()
        # Wait for the socket to actually release: a crash-recovery
        # restart rebinds the same port immediately, and the datagram
        # transport only closes on a later loop iteration.
        await self._protocol.closed
