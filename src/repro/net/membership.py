"""Dynamic group membership: live view, join/leave handshake, eviction.

The paper pitches the (R, K) scheme for "large and *dynamic*" systems —
a joiner draws a key set with no global coordination — yet until this
layer the live runtime assumed a static peer list wired up by hand.
:class:`GroupMembership` closes that gap with four fire-and-forget wire
frames (see ``docs/PROTOCOL.md`` §9):

* **VIEW** — a versioned membership announcement ``(view_id, members)``.
  View ids are strictly monotonic; receivers install a view only when
  its id exceeds the one they hold, so the coordinator's periodic
  re-announcement doubles as the loss-healing mechanism and is
  idempotent.  The *acting coordinator* is decided by a deterministic
  rule — the smallest ``node_id`` among members this node does not
  currently hold in quarantine — so a dead coordinator's successor
  starts announcing (and can evict the corpse) without an election.
* **JOIN / JOIN_ACK** — the joining handshake.  The joiner sends JOIN to
  its seed peers and retries with exponential backoff
  (``join_timeout`` · ``join_backoff``ⁿ, up to ``join_retries``
  retries).  The acting coordinator admits it: grants a
  :class:`~repro.core.keyspace.KeyAssignment` (recycling sets released
  by departed members), installs the bumped view, and replies with a
  JOIN_ACK carrying the clock geometry ``(R, K)``, the granted keys,
  the membership, and a consistent state-transfer pair — the
  coordinator's clock vector together with its **delivered** frontiers,
  read atomically in the synchronous frame handler.  *Delivered*, not
  received: marking a seen-but-undelivered message as covered would
  wedge the joiner's pending queue forever.  A non-coordinator answers
  with a rejection ack that still carries the members, so the joiner
  re-targets the coordinator on the next attempt; a duplicate JOIN from
  an existing member is answered idempotently with its recorded keys
  (that is what heals a lost JOIN_ACK).
* **LEAVE** — a graceful goodbye.  The coordinator removes the member,
  recycles its key set, and announces the new view.  LEAVE is lossy by
  design: the backstop for a crash (or a lost LEAVE) is **quarantine
  eviction** — when a member's :class:`~repro.net.liveness.
  PeerLivenessMonitor` quarantine ages past ``evict_after``, the acting
  coordinator expels it the same way.

Every member mirrors the view's assignments into its local
:class:`~repro.core.keyspace.KeyAssigner`, so whichever member the
coordinator rule promotes next already holds a correct ledger and
recycles keys exactly as the original would have.  Installed views and
rekeys are persisted through the node's journal, so a restarted node
rejoins with a consistent identity.

Split-brain note: two disjoint groups bootstrapped independently do not
merge (view ids are per-group); deploy with exactly one bootstrap node
and point every other node's ``seed_peers`` at running members.  Within
one group, a partitioned coordinator pair converges because announcements
carry strictly greater view ids — the higher id wins everywhere.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass
from typing import Hashable, List, Optional, Set, Tuple

from repro.core.codec import (
    Frame,
    JoinAckFrame,
    JoinFrame,
    LeaveFrame,
    MemberRecord,
    ViewFrame,
)
from repro.core.errors import ConfigurationError, MembershipError
from repro.core.keyspace import KeyAssigner, RandomKeyAssigner

__all__ = ["MembershipConfig", "GroupView", "GroupMembership"]

logger = logging.getLogger(__name__)

# How many spaced copies of a LEAVE announcement leave() emits; see its
# docstring for why one datagram is not enough on a lossy path.
_LEAVE_BURST = 3

Address = Hashable


@dataclass(frozen=True)
class MembershipConfig:
    """Tuning of the membership layer.

    Attributes:
        seed_peers: addresses of running members a joiner contacts first;
            empty for the bootstrap node.
        join_timeout: seconds to wait for a JOIN_ACK before retrying.
        join_retries: JOIN retransmissions after the first attempt.
        join_backoff: multiplier on the timeout after each attempt.
        evict_after: seconds a member may sit in liveness quarantine
            before the acting coordinator expels it from the view
            (0 disables forced eviction).
        announce_interval: seconds between the coordinator's periodic
            VIEW re-announcements (the VIEW-loss healing mechanism) and
            eviction sweeps.
    """

    seed_peers: Tuple[Address, ...] = ()
    join_timeout: float = 1.0
    join_retries: int = 5
    join_backoff: float = 2.0
    evict_after: float = 10.0
    announce_interval: float = 2.0

    def __post_init__(self) -> None:
        if self.join_timeout <= 0:
            raise ConfigurationError(
                f"join_timeout must be > 0, got {self.join_timeout}"
            )
        if self.join_retries < 0:
            raise ConfigurationError(
                f"join_retries must be >= 0, got {self.join_retries}"
            )
        if self.join_backoff < 1.0:
            raise ConfigurationError(
                f"join_backoff must be >= 1, got {self.join_backoff}"
            )
        if self.evict_after < 0:
            raise ConfigurationError(
                f"evict_after must be >= 0, got {self.evict_after}"
            )
        if self.announce_interval <= 0:
            raise ConfigurationError(
                f"announce_interval must be > 0, got {self.announce_interval}"
            )


@dataclass(frozen=True)
class GroupView:
    """One immutable, versioned membership: ``(view_id, members, epoch)``.

    ``epoch`` is the clock-sizing generation of the key assignment the
    view carries.  It moves only when the acting coordinator re-tiles
    the keyspace to a new ``K`` (:meth:`GroupMembership.propose_epoch`);
    ordinary join/leave/evict view bumps keep it unchanged.  Every epoch
    bump rides a view bump, so the view id stays the only install-order
    authority.
    """

    view_id: int
    members: Tuple[MemberRecord, ...] = ()
    epoch: int = 0

    def k(self) -> Optional[int]:
        """The per-member key count this view's assignment tiles, or
        None for an empty view (members are always uniform-K)."""
        return len(self.members[0].keys) if self.members else None

    def get(self, node_id: str) -> Optional[MemberRecord]:
        """The member record for ``node_id``, or None."""
        for member in self.members:
            if member.node_id == node_id:
                return member
        return None

    def member_ids(self) -> Tuple[str, ...]:
        """All member node ids."""
        return tuple(member.node_id for member in self.members)

    def by_address(self, address: Address) -> Optional[MemberRecord]:
        """The member record reachable at ``address``, or None."""
        for member in self.members:
            if member.address == address:
                return member
        return None


class GroupMembership:
    """Live group-view manager for one :class:`~repro.net.node.
    ReliableCausalNode`.

    Construction attaches the manager to the node (``node.membership``),
    wiring the session's membership-frame upcall through it; the node's
    :meth:`~repro.net.node.ReliableCausalNode.start` starts the
    announce/evict loop and :meth:`~repro.net.node.ReliableCausalNode.
    close` stops it.  Then either :meth:`bootstrap` (first node) or
    ``await`` :meth:`join` (every other node) brings it into a group.

    Args:
        node: the owning node; must not already have a membership layer.
        config: tuning (see :class:`MembershipConfig`).
        assigner: the key-assignment ledger every member mirrors;
            defaults to a :class:`~repro.core.keyspace.RandomKeyAssigner`
            over the node clock's (R, K) — the paper's uncoordinated
            regime.  Pass a :class:`~repro.core.keyspace.
            PerfectKeyAssigner` for deterministic recycling in tests.
    """

    def __init__(
        self,
        node,
        config: Optional[MembershipConfig] = None,
        assigner: Optional[KeyAssigner] = None,
    ) -> None:
        if getattr(node, "membership", None) is not None:
            raise ConfigurationError("node already has a membership layer")
        self._node = node
        self.config = config if config is not None else MembershipConfig()
        clock = node.endpoint.clock
        self._assigner = (
            assigner if assigner is not None
            else RandomKeyAssigner(clock.r, clock.k)
        )
        if self._assigner.r != clock.r or self._assigner.k != clock.k:
            raise ConfigurationError(
                f"assigner geometry (R={self._assigner.r}, K={self._assigner.k}) "
                f"does not match the clock (R={clock.r}, K={clock.k})"
            )
        self._view: Optional[GroupView] = None
        self.joined = False
        self._join_future: Optional[asyncio.Future] = None
        self._loop_task: Optional[asyncio.Task] = None
        self.join_attempts = 0
        self.joins_admitted = 0
        self.leaves = 0
        self.evictions = 0
        # Leaver ids already counted, so a LEAVE burst tallies once.
        self._leave_noted: Set[Hashable] = set()
        self.view_changes = 0
        self.epoch_bumps = 0
        node.membership = self
        self.bind_metrics(node.metrics)
        # A journal-recovered node resumes the view it last installed:
        # its peers, keys, view id and epoch survive the restart, so it
        # rejoins consistently (and re-confirms with an idempotent JOIN).
        recovered = getattr(node, "recovered", None)
        if recovered is not None and recovered.view is not None:
            view_id, members, epoch = recovered.view
            records = tuple(
                MemberRecord(node_id=str(n), address=a, keys=tuple(k))
                for n, a, k in members
            )
            self._install(GroupView(view_id, records, epoch), persist=False)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def view(self) -> Optional[GroupView]:
        """The currently installed view (None before bootstrap/join)."""
        return self._view

    @property
    def assigner(self) -> KeyAssigner:
        """The mirrored key-assignment ledger."""
        return self._assigner

    @property
    def epoch(self) -> int:
        """The clock-sizing epoch of the installed view (0 before one)."""
        return self._view.epoch if self._view is not None else 0

    @property
    def node_id(self) -> str:
        return str(self._node.node_id)

    def acting_coordinator(self, exclude: Tuple[str, ...] = ()) -> Optional[str]:
        """The member this node currently holds responsible for views.

        Deterministic rule: the smallest ``node_id`` among members whose
        address this node does *not* hold in quarantine (so a dead
        coordinator's successor takes over after one quarantine delay).
        Transient disagreement between members is converged by the
        strictly-monotonic view id: the install rule accepts whichever
        announcement carries the higher id.
        """
        if self._view is None:
            return None
        liveness = self._node.liveness
        candidates = []
        for member in self._view.members:
            if member.node_id in exclude:
                continue
            if (
                member.node_id != self.node_id
                and liveness is not None
                and liveness.is_quarantined(member.address)
            ):
                continue
            candidates.append(member.node_id)
        return min(candidates) if candidates else None

    def is_coordinator(self) -> bool:
        """Whether this node believes it is the acting coordinator."""
        return self.joined and self.acting_coordinator() == self.node_id

    def bind_metrics(self, registry) -> None:
        """Mirror membership state into the node's metrics registry."""
        view_id = registry.gauge("repro_membership_view_id")
        view_size = registry.gauge("repro_membership_view_size")
        join_attempts = registry.counter("repro_membership_join_attempts_total")
        admitted = registry.counter("repro_membership_joins_admitted_total")
        leaves = registry.counter("repro_membership_leaves_total")
        evictions = registry.counter("repro_membership_evictions_total")
        changes = registry.counter("repro_membership_view_changes_total")
        epoch = registry.gauge("repro_membership_epoch")
        bumps = registry.counter("repro_membership_epoch_bumps_total")

        def collect() -> None:
            view_id.set(self._view.view_id if self._view is not None else 0)
            view_size.set(len(self._view.members) if self._view is not None else 0)
            join_attempts.set(self.join_attempts)
            admitted.set(self.joins_admitted)
            leaves.set(self.leaves)
            evictions.set(self.evictions)
            changes.set(self.view_changes)
            epoch.set(self.epoch)
            bumps.set(self.epoch_bumps)

        registry.register_collector(collect)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the announce/evict loop (called by ``node.start()``)."""
        if self._loop_task is None:
            self._loop_task = asyncio.get_running_loop().create_task(self._loop())

    def stop(self) -> None:
        """Stop the loop (called by ``node.close()``)."""
        if self._loop_task is not None:
            self._loop_task.cancel()
            self._loop_task = None
        if self._join_future is not None and not self._join_future.done():
            self._join_future.cancel()

    def bootstrap(self) -> GroupView:
        """Found a group of one: this node becomes view 1's coordinator.

        A journal-recovered node that already holds a view keeps it
        instead (its old group is its group).
        """
        if self._view is not None:
            self.joined = True
            return self._view
        clock = self._node.endpoint.clock
        me = MemberRecord(
            node_id=self.node_id,
            address=self._node.local_address,
            keys=tuple(clock.own_keys),
        )
        self._install(GroupView(1, (me,)), persist=True)
        self.joined = True
        return self._view

    # ------------------------------------------------------------------
    # joining
    # ------------------------------------------------------------------

    async def join(self) -> GroupView:
        """Join a running group through ``config.seed_peers``.

        Retries with exponential backoff; raises
        :class:`~repro.core.errors.MembershipError` when every attempt
        times out.  On a journal-recovered node the handshake still runs
        (idempotent on the coordinator) so an eviction that happened
        while this node was down is healed by re-admission.
        """
        targets = [
            address
            for address in self.config.seed_peers
            if address != self._node.local_address
        ]
        if not targets:
            raise MembershipError("join() needs at least one seed peer")
        clock = self._node.endpoint.clock
        # A rejoiner proposes its current keys so the coordinator can
        # re-adopt them; a fresh node proposes nothing.
        rejoin_keys = (
            tuple(clock.own_keys) if self._node.recovered is not None else ()
        )
        frame = JoinFrame(
            node_id=self.node_id,
            address=self._node.local_address,
            keys=rejoin_keys,
        )
        timeout = self.config.join_timeout
        loop = asyncio.get_running_loop()
        for attempt in range(self.config.join_retries + 1):
            self.join_attempts += 1
            self._join_future = loop.create_future()
            for target in targets:
                self._node.session.send_control(target, frame)
            self._node.trace.emit(
                "join_sent", ts=loop.time(),
                attempt=attempt, targets=[str(t) for t in targets],
            )
            try:
                ack, addr = await asyncio.wait_for(self._join_future, timeout)
            except asyncio.TimeoutError:
                timeout *= self.config.join_backoff
                continue
            finally:
                self._join_future = None
            if ack.accepted:
                self._complete_join(ack)
                self._node.trace.emit(
                    "join_acked", ts=loop.time(),
                    view=ack.view_id, keys=list(ack.keys),
                )
                return self._view
            # Rejected — typically "not the coordinator".  The ack still
            # carries the membership: aim the next attempt at the
            # coordinator by the deterministic rule.
            if ack.members:
                coordinator = min(ack.members, key=lambda m: m.node_id)
                if coordinator.address != self._node.local_address:
                    targets = [coordinator.address]
        raise MembershipError(
            f"join failed: no acceptance after "
            f"{self.config.join_retries + 1} attempts"
        )

    def _complete_join(self, ack: JoinAckFrame) -> None:
        node = self._node
        clock = node.endpoint.clock
        # R is immutable group identity.  K only has to match the
        # joiner's configuration while the group still runs its founding
        # geometry (epoch 0, where a K mismatch means misconfiguration);
        # once the group has renegotiated (epoch > 0) the granted keys
        # *define* this node's K — the rekey below adopts it.
        if ack.r != clock.r or (
            ack.epoch == 0 and ack.keys and len(ack.keys) != clock.k
        ):
            raise MembershipError(
                f"group geometry (R={ack.r}, K={ack.k}) does not match "
                f"this node's clock (R={clock.r}, K={clock.k})"
            )
        granted = tuple(ack.keys)
        pristine = (
            node.recovered is None
            and clock.send_count == 0
            and not any(clock.snapshot())
            and len(node.store) == 0
        )
        if pristine:
            # Atomic state transfer: keys, vector and delivered
            # frontiers adopted together or not at all — a vector
            # without its frontiers (or vice versa) corrupts the
            # delivery condition.
            if granted != tuple(clock.own_keys):
                if node.journal is not None:
                    # WAL-before-state: replay rekeys before any send.
                    node.journal.record_rekey(granted)
                clock.rekey(granted)
            if any(ack.vector):
                clock.initialize_from(ack.vector)
            if ack.frontiers:
                node.endpoint.restore_seen(dict(ack.frontiers))
                node.store.restore_frontiers(dict(ack.frontiers))
                for sender, (contiguous, extras) in ack.frontiers.items():
                    node._delivered_frontiers[sender] = _frontier_of(
                        contiguous, extras
                    )
            if node.journal is not None:
                # Fold the transfer into an immediate snapshot so a
                # crash right after the join recovers post-transfer.
                node.journal.record_state_transfer(
                    granted,
                    clock.snapshot(),
                    dict(ack.frontiers),
                    node.session.link_states(),
                )
        elif granted != tuple(clock.own_keys):
            # A re-admitted node keeps its state; the coordinator
            # granted different keys (e.g. its old set was recycled).
            if node.journal is not None:
                node.journal.record_rekey(granted)
            clock.rekey(granted)
            node.flush_delta_refs()
        self._install(
            GroupView(ack.view_id, ack.members, ack.epoch), persist=True
        )
        self.joined = True

    async def leave(self) -> None:
        """Gracefully announce departure and detach from the group.

        Fire-and-forget by design; if every LEAVE is lost the group
        evicts this node through the quarantine path instead.  The frame
        is repeated in a short spaced burst so one lossy instant does
        not routinely downgrade a graceful departure into an eviction —
        separate datagrams, because copies coalesced into one batch
        share its fate.
        """
        if not self.joined or self._view is None:
            return
        frame = LeaveFrame(node_id=self.node_id)
        for attempt in range(_LEAVE_BURST):
            for address in self._announce_targets():
                self._node.session.send_control(address, frame)
            self._node.session.flush()
            # The flushed datagrams ride background send tasks; yield so
            # they reach the wire before a typical ``leave(); close()``
            # sequence cancels them (close() cancels in-flight sends by
            # design).
            await asyncio.sleep(0)
            await asyncio.sleep(0)
            if attempt < _LEAVE_BURST - 1:
                await asyncio.sleep(0.02)
        self.joined = False
        self._node.trace.emit(
            "leave_sent", ts=self._node._now(), view=self._view.view_id
        )

    # ------------------------------------------------------------------
    # frame handling (synchronous, from the session's dispatch)
    # ------------------------------------------------------------------

    def handle_frame(self, frame: Frame, addr: Address) -> None:
        """Dispatch one membership frame (the session's upcall)."""
        if isinstance(frame, ViewFrame):
            self._on_view(frame, addr)
        elif isinstance(frame, JoinFrame):
            self._on_join(frame, addr)
        elif isinstance(frame, JoinAckFrame):
            self._on_join_ack(frame, addr)
        elif isinstance(frame, LeaveFrame):
            self._on_leave(frame, addr)

    def _on_view(self, frame: ViewFrame, addr: Address) -> None:
        if not self.joined:
            # A joiner must not adopt views before its state transfer
            # lands (the JOIN_ACK carries the view it needs).
            return
        if self._view is not None and frame.view_id <= self._view.view_id:
            return
        self._install(
            GroupView(frame.view_id, frame.members, frame.epoch), persist=True
        )
        # Overlay mode: announcements gossip like data.  A strictly
        # newer view is forwarded once to this node's push targets —
        # installed duplicates fail the view_id check above, so the
        # wave is infect-and-die, same as RELAY envelopes.
        self._forward_control(frame, exclude=(addr,))

    def _forward_control(self, frame: Frame, exclude: Tuple[Address, ...] = ()) -> None:
        node = self._node
        if node.overlay is None:
            return
        for address in node.overlay.push_targets(
            exclude=exclude, live_filter=node._overlay_live
        ):
            node.session.send_control(address, frame)

    def _on_join(self, frame: JoinFrame, addr: Address) -> None:
        if not self.joined or self._view is None:
            return
        if frame.node_id == self.node_id:
            return
        existing = self._view.get(frame.node_id)
        if existing is not None:
            # Already a member: idempotent accept (heals a lost ack).
            # Any member may answer — the recorded keys are in the view.
            self._send_join_ack(frame.address, True, existing.keys)
            return
        if self.acting_coordinator() != self.node_id:
            self._send_join_ack(
                frame.address, False, (),
                reason=f"not the coordinator (ask {self.acting_coordinator()!r})",
            )
            return
        try:
            keys = self._grant_keys(frame.node_id, frame.keys)
        except MembershipError as error:
            # e.g. a perfect assigner with every disjoint set in use.
            self._send_join_ack(frame.address, False, (), reason=str(error))
            return
        member = MemberRecord(
            node_id=frame.node_id, address=frame.address, keys=keys
        )
        new_view = GroupView(
            self._view.view_id + 1,
            self._view.members + (member,),
            self._view.epoch,
        )
        # Install before acking: if we crash after the install, the
        # announced view already contains the joiner and the successor
        # coordinator answers its JOIN retry idempotently.
        self._install(new_view, persist=True)
        self.joins_admitted += 1
        self._send_join_ack(frame.address, True, keys)
        self._announce()

    def _grant_keys(self, node_id: str, proposed: Tuple[int, ...]) -> Tuple[int, ...]:
        clock = self._node.endpoint.clock
        if node_id in self._assigner:
            # Stale ledger entry for a non-member id (e.g. it left while
            # we were partitioned): recycle it before granting afresh.
            self._assigner.release(node_id)
        if proposed and len(proposed) == clock.k:
            # A rejoiner asked for its previous set; re-adopt if free.
            try:
                return self._assigner.adopt(node_id, proposed).keys
            except (MembershipError, ConfigurationError):
                pass
        return self._assigner.assign(node_id).keys

    def _send_join_ack(
        self,
        addr: Address,
        accepted: bool,
        keys: Tuple[int, ...],
        reason: str = "",
    ) -> None:
        node = self._node
        clock = node.endpoint.clock
        view = self._view
        # Vector and delivered frontiers are read back-to-back in this
        # synchronous handler — no await can interleave a delivery
        # between them, so the pair is consistent by construction.
        frame = JoinAckFrame(
            accepted=accepted,
            view_id=view.view_id if view is not None else 0,
            r=clock.r,
            k=len(keys) if keys else clock.k,
            keys=tuple(keys),
            members=view.members if view is not None else (),
            frontiers=node.delivered_frontiers() if accepted else {},
            vector=clock.snapshot() if accepted else (),
            reason=reason,
            epoch=view.epoch if view is not None else 0,
        )
        node.session.send_control(addr, frame)
        node.session.flush(addr)

    def _on_join_ack(self, frame: JoinAckFrame, addr: Address) -> None:
        future = self._join_future
        if future is not None and not future.done():
            future.set_result((frame, addr))
        # Else: a duplicate ack (the coordinator re-answered a retried
        # JOIN after the first ack already completed) — nothing to do.

    def _on_leave(self, frame: LeaveFrame, addr: Address) -> None:
        if not self.joined or self._view is None:
            return
        if self._view.get(frame.node_id) is None:
            return
        if frame.node_id in self._leave_noted:
            # leave() bursts several copies for loss resilience; a
            # non-coordinator keeps the leaver in its view until the
            # next VIEW arrives, so dedup by id, not by view lookup.
            return
        self._leave_noted.add(frame.node_id)
        self.leaves += 1
        self._node.trace.emit(
            "member_left", ts=self._node._now(), member=frame.node_id
        )
        # Overlay mode: a LEAVE heard for the first time is forwarded so
        # it reaches the acting coordinator even when the leaver's
        # bounded view did not include it (dedup via _leave_noted).
        self._forward_control(frame, exclude=(addr,))
        # Only the acting coordinator rewrites the view; everyone else
        # waits for its announcement (eviction is the backstop if the
        # coordinator itself is the leaver's victim).
        if self.acting_coordinator(exclude=(frame.node_id,)) == self.node_id:
            self._remove_member(frame.node_id)

    # ------------------------------------------------------------------
    # coordinator duties
    # ------------------------------------------------------------------

    async def _loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.announce_interval)
            if not self.joined or self._view is None:
                continue
            if self.acting_coordinator() != self.node_id:
                continue
            node = self._node
            if node.liveness is not None and self.config.evict_after > 0:
                now = asyncio.get_running_loop().time()
                for address in node.liveness.overdue(now, self.config.evict_after):
                    member = self._view.by_address(address)
                    if member is not None and member.node_id != self.node_id:
                        self.evictions += 1
                        node.trace.emit(
                            "member_evicted", ts=now, member=member.node_id
                        )
                        self._remove_member(member.node_id)
            self._announce()

    def _remove_member(self, node_id: str) -> None:
        if self._view is None or self._view.get(node_id) is None:
            return
        remaining = tuple(
            member for member in self._view.members if member.node_id != node_id
        )
        self._install(
            GroupView(self._view.view_id + 1, remaining, self._view.epoch),
            persist=True,
        )
        self._announce()

    def _announce_targets(self) -> List[Address]:
        """Where coordinator announcements (and LEAVE bursts) go.

        Mesh mode: every member directly — O(N) control datagrams.
        Overlay mode: the bounded partial view; receivers gossip newer
        views onward (see :meth:`_on_view`), so coverage is the relay
        wave's, not the coordinator's fanout."""
        node = self._node
        if node.overlay is not None and len(node.overlay) > 0:
            return node.overlay.digest_targets(live_filter=node._overlay_live)
        if self._view is None:
            return []
        return [
            member.address
            for member in self._view.members
            if member.node_id != self.node_id
        ]

    def _announce(self) -> None:
        if self._view is None:
            return
        frame = ViewFrame(
            view_id=self._view.view_id,
            members=self._view.members,
            epoch=self._view.epoch,
        )
        for address in self._announce_targets():
            self._node.session.send_control(address, frame)

    def propose_epoch(self, new_k: int) -> Optional[GroupView]:
        """Renegotiate the group's clock geometry to ``new_k`` keys.

        Coordinator-only (raises :class:`~repro.core.errors.
        MembershipError` elsewhere).  Re-tiles the keyspace through
        :meth:`~repro.core.keyspace.KeyAssigner.retile` — a fresh ledger
        at the new ``K``, every member re-assigned in ``node_id`` order
        so the outcome is deterministic for a given assigner — and
        installs the result as a bumped view carrying ``epoch + 1``.
        The view install rekeys the local clock; followers do the same
        when the announcement reaches them, and in-flight messages from
        either geometry stay deliverable because every message carries
        its sender's keys (see :meth:`~repro.core.clocks.
        EntryVectorClock.rekey`).

        Returns the new view, or ``None`` when ``new_k`` already is the
        current geometry (no epoch is spent on a no-op).
        """
        if not self.is_coordinator() or self._view is None:
            raise MembershipError(
                "only the acting coordinator proposes clock-sizing epochs"
            )
        clock = self._node.endpoint.clock
        if not 1 <= new_k <= clock.r:
            raise ConfigurationError(
                f"need 1 <= K <= R, got K={new_k}, R={clock.r}"
            )
        if new_k == (self._view.k() or self._assigner.k):
            return None
        fresh = self._assigner.retile(new_k)
        members = tuple(
            MemberRecord(
                node_id=member.node_id,
                address=member.address,
                keys=fresh.assign(member.node_id).keys,
            )
            for member in sorted(self._view.members, key=lambda m: m.node_id)
        )
        self._assigner = fresh
        new_view = GroupView(
            self._view.view_id + 1, members, self._view.epoch + 1
        )
        self.epoch_bumps += 1
        self._node.trace.emit(
            "epoch_proposed", ts=self._node._now(),
            epoch=new_view.epoch, view=new_view.view_id, k=new_k,
        )
        self._install(new_view, persist=True)
        self._announce()
        return new_view

    # ------------------------------------------------------------------
    # view installation
    # ------------------------------------------------------------------

    def _install(self, view: GroupView, persist: bool) -> None:
        """Adopt ``view`` as current: sync peers, ledger, and journal.

        The single choke point for view changes — coordinator-side
        bumps, remote VIEW frames, journal recovery, and join completion
        all land here, so the peer list, the mirrored assigner, the
        eviction marks and the persisted view can never diverge.
        """
        node = self._node
        previous = self._view
        self._view = view
        self.view_changes += 1
        current_ids = set(view.member_ids())
        # A re-admitted id may legitimately leave again later.
        self._leave_noted -= current_ids
        # An epoch bump re-tiled the keyspace at a new K; the mirrored
        # ledger is per-K, so rebuild it empty (the adopt loop below
        # refills it from the view, which is authoritative anyway).
        view_k = view.k()
        if view_k is not None and view_k != self._assigner.k:
            self._assigner = self._assigner.retile(view_k)
        # Departures first: release their keys (recycling) and purge
        # their runtime state.
        for process_id in list(self._assigner.assignments):
            if str(process_id) not in current_ids:
                try:
                    self._assigner.release(process_id)
                except MembershipError:
                    pass
        if previous is not None:
            for member in previous.members:
                if member.node_id in current_ids:
                    continue
                if member.node_id == self.node_id:
                    continue
                node.evict_peer(member.address, member.node_id)
        # Arrivals / survivors: mirror their assignments and peer them.
        for member in view.members:
            try:
                existing = self._assigner.lookup(member.node_id)
                if tuple(existing.keys) != tuple(member.keys):
                    # The view is authoritative over a stale mirror.
                    self._assigner.release(member.node_id)
                    self._assigner.adopt(member.node_id, member.keys)
            except MembershipError:
                try:
                    self._assigner.adopt(member.node_id, member.keys)
                except (MembershipError, ConfigurationError):
                    logger.warning(
                        "could not mirror key assignment %r for %r",
                        member.keys, member.node_id,
                    )
            if member.node_id != self.node_id:
                node.add_peer(member.address)
                if node.liveness is not None:
                    node.liveness.track(member.address, node._now())
        # The view is authoritative over this node's own key set too: a
        # higher-epoch view re-tiled it, so adopt the new keys before the
        # view is persisted (WAL order: rekey, then view — replay then
        # reproduces exactly this install).  Recovery installs
        # (persist=False) never rekey here; the node constructor already
        # restored the journal's own-key record.
        own = view.get(self.node_id)
        clock = node.endpoint.clock
        if (
            persist
            and own is not None
            and own.keys
            and tuple(own.keys) != tuple(clock.own_keys)
        ):
            if node.journal is not None:
                node.journal.record_rekey(tuple(own.keys))
            clock.rekey(own.keys)
            node.flush_delta_refs()
        if self.node_id not in current_ids and self.joined:
            # We were expelled (evicted while partitioned, most likely).
            self.joined = False
            logger.warning(
                "node %r is no longer in view %d; re-join required",
                self.node_id, view.view_id,
            )
        if persist and node.journal is not None:
            node.journal.record_view(
                view.view_id,
                [(m.node_id, m.address, m.keys) for m in view.members],
                epoch=view.epoch,
            )
        # Stamp subsequent encodings with the installed epoch so mixed-
        # epoch frames are tellable apart while the bump drains through.
        node.set_epoch(view.epoch)
        node.trace.emit(
            "view_install", ts=node._now(),
            view=view.view_id, size=len(view.members),
            members=list(current_ids), epoch=view.epoch,
        )


def _frontier_of(contiguous: int, extras: Tuple[int, ...]):
    from repro.net.journal import _Frontier

    return _Frontier(int(contiguous), (int(e) for e in extras))
