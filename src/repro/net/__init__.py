"""Asyncio deployment layer: run the protocol over real transports.

:mod:`repro.sim` answers "how does the mechanism behave"; this package
answers "how do I ship it": the same protocol endpoint behind an asyncio
peer, a binary wire codec, an in-process bus with realistic delays, and
a UDP transport.
"""

from repro.net.bus import BusTransport, LocalAsyncBus
from repro.net.peer import AsyncCausalPeer, Transport
from repro.net.udp import UdpTransport

__all__ = [
    "Transport",
    "AsyncCausalPeer",
    "LocalAsyncBus",
    "BusTransport",
    "UdpTransport",
]
