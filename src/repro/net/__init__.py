"""Asyncio deployment layer: run the protocol over real transports.

:mod:`repro.sim` answers "how does the mechanism behave"; this package
answers "how do I ship it": the protocol endpoint behind an asyncio
peer, a binary wire codec, an in-process bus with realistic delays, a
UDP transport, and — because UDP is fire-and-forget while the paper's
Algorithm 5 only tolerates *late* messages — a reliability runtime:
:class:`ReliableSession` (per-peer acks, NACK-driven retransmission
with backoff, backpressure) and :class:`ReliableCausalNode` (endpoint +
session + anti-entropy message store).  Nodes survive more than packet
loss: :class:`NodeJournal` persists the causal state across crashes
(WAL + snapshots), :class:`LivenessPolicy` drives a heartbeat failure
detector that quarantines dead peers, and :class:`FaultWindow` schedules
partitions and latency spikes for chaos testing.  :class:`GroupMembership`
makes the peer set itself dynamic: a versioned live view, a JOIN/LEAVE
handshake with state transfer, and quarantine-driven eviction.  For
swarms too large for a full mesh, :class:`PartialView` bounds the
dissemination cost: broadcasts ride bounded-fanout RELAY gossip over a
partial view instead of N−1 unicasts (``dissemination="overlay"``).
And because the paper sizes K from a one-shot *guess* of the in-flight
concurrency X, :class:`AdaptiveClockController` closes that loop at
runtime: it re-estimates X from the node's own metrics stream and has
the acting coordinator renegotiate clock-sizing *epochs* for the whole
group (``--adaptive``).

Assemble nodes with :func:`repro.api.create_node` rather than by hand.
"""

from repro.net.adaptive import (
    AdaptiveClockController,
    AdaptivePolicy,
    ConcurrencyEstimator,
    EpochPlanner,
    TelemetrySample,
    TelemetryWindow,
)
from repro.net.bus import BusTransport, LocalAsyncBus
from repro.net.faults import FaultWindow, FaultyTransport
from repro.net.journal import LinkState, NodeJournal, RecoveredState
from repro.net.liveness import LivenessPolicy, PeerLivenessMonitor
from repro.net.membership import GroupMembership, GroupView, MembershipConfig
from repro.net.node import MessageStore, ReliableCausalNode, StoreStats
from repro.net.overlay import OverlayStats, PartialView
from repro.net.peer import AsyncCausalPeer, Transport
from repro.net.session import ReliableSession, RetransmitPolicy, TransportStats
from repro.net.udp import BatchedUdpTransport, IoStats, UdpTransport

__all__ = [
    "Transport",
    "AsyncCausalPeer",
    "LocalAsyncBus",
    "BusTransport",
    "UdpTransport",
    "BatchedUdpTransport",
    "IoStats",
    "FaultWindow",
    "FaultyTransport",
    "NodeJournal",
    "RecoveredState",
    "LinkState",
    "LivenessPolicy",
    "PeerLivenessMonitor",
    "MembershipConfig",
    "GroupView",
    "GroupMembership",
    "ReliableSession",
    "RetransmitPolicy",
    "TransportStats",
    "MessageStore",
    "StoreStats",
    "ReliableCausalNode",
    "PartialView",
    "OverlayStats",
    "AdaptivePolicy",
    "AdaptiveClockController",
    "ConcurrencyEstimator",
    "EpochPlanner",
    "TelemetrySample",
    "TelemetryWindow",
]
