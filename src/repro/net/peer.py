"""Asyncio deployment layer: a causal broadcast peer over a real transport.

The :mod:`repro.sim` package evaluates the mechanism under controlled
conditions; this module is the *deployment* path: the same protocol
endpoint, fed by an asyncio transport and the binary wire codec.

Composition::

    application  <- deliveries -  AsyncCausalPeer  - datagrams ->  Transport
                                   (endpoint + codec + peer table)

Transports provided:

* :class:`repro.net.bus.LocalAsyncBus` — an in-process asyncio bus with a
  pluggable delay model (great for integration tests and demos; reuses
  the simulator's delay models);
* :class:`repro.net.udp.UdpTransport` — real UDP datagrams (loopback or
  LAN), fire-and-forget like the gossip substrates the paper targets.

A peer is agnostic to the transport and to membership discovery: you add
peer addresses explicitly (``add_peer``) or wire in your own discovery.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Hashable, List, Optional, Sequence

from repro.core.clocks import EntryVectorClock
from repro.core.codec import MessageCodec
from repro.core.detector import DeliveryErrorDetector
from repro.core.protocol import CausalBroadcastEndpoint, DeliveryRecord, Message

__all__ = ["Transport", "AsyncCausalPeer"]

Address = Hashable
DeliveryHandler = Callable[[DeliveryRecord], None]


class Transport:
    """Minimal async datagram transport interface.

    The receiver callback is invoked as ``callback(data, addr)`` where
    ``addr`` is the sender's transport address — sessions need it to
    attribute datagrams to peers (per-peer acks, retransmit state).
    """

    async def send(self, destination: Address, data: bytes) -> None:
        """Best-effort delivery of one datagram."""
        raise NotImplementedError

    def set_receiver(self, callback: Callable[[bytes, Address], None]) -> None:
        """Install the upcall invoked for every received datagram."""
        raise NotImplementedError

    async def close(self) -> None:
        """Release transport resources."""


class AsyncCausalPeer:
    """One participant: protocol endpoint + codec + peer table.

    Args:
        peer_id: this peer's identity (appears as the message sender).
        clock: its logical clock (any member of the (n, r, k) family).
        transport: where datagrams go; the peer installs itself as the
            transport's receiver.
        detector: optional Algorithm 4/5 alert check.
        codec: wire format (binary + JSON payloads by default).
        on_delivery: synchronous callback per delivery (local and remote).
    """

    def __init__(
        self,
        peer_id: Hashable,
        clock: EntryVectorClock,
        transport: Transport,
        detector: Optional[DeliveryErrorDetector] = None,
        codec: Optional[MessageCodec] = None,
        on_delivery: Optional[DeliveryHandler] = None,
    ) -> None:
        self._peer_id = peer_id
        self._codec = codec if codec is not None else MessageCodec()
        self._transport = transport
        self._on_delivery = on_delivery
        self._peers: List[Address] = []
        self._deliveries: List[DeliveryRecord] = []
        self._decode_errors = 0
        self.endpoint = CausalBroadcastEndpoint(
            process_id=str(peer_id),
            clock=clock,
            detector=detector,
            deliver_callback=self._handle_delivery,
        )
        transport.set_receiver(self._handle_datagram)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def add_peer(self, address: Address) -> None:
        """Start broadcasting to ``address`` (idempotent)."""
        if address not in self._peers:
            self._peers.append(address)

    def remove_peer(self, address: Address) -> None:
        """Stop broadcasting to ``address`` (missing is fine)."""
        if address in self._peers:
            self._peers.remove(address)

    @property
    def peers(self) -> Sequence[Address]:
        """Addresses this peer currently broadcasts to."""
        return tuple(self._peers)

    @property
    def peer_id(self) -> Hashable:
        """This peer's identity."""
        return self._peer_id

    # ------------------------------------------------------------------
    # sending / receiving
    # ------------------------------------------------------------------

    async def broadcast(self, payload: Any = None) -> Message:
        """Timestamp, self-deliver, and transmit one message to all peers."""
        message = self.endpoint.broadcast(payload)
        data = self._codec.encode(message)
        await asyncio.gather(
            *(self._transport.send(address, data) for address in self._peers)
        )
        return message

    def _handle_datagram(self, data: bytes, addr: Address = None) -> None:
        try:
            message = self._codec.decode(data)
        except Exception:
            # A malformed datagram must never take the peer down.
            self._decode_errors += 1
            return
        self.endpoint.on_receive(message)

    def _handle_delivery(self, record: DeliveryRecord) -> None:
        self._deliveries.append(record)
        if self._on_delivery is not None:
            self._on_delivery(record)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def deliveries(self) -> List[DeliveryRecord]:
        """All deliveries so far, in order (local self-deliveries included)."""
        return list(self._deliveries)

    def delivered_payloads(self, include_local: bool = True) -> List[Any]:
        """Payloads in delivery order."""
        return [
            record.message.payload
            for record in self._deliveries
            if include_local or not record.local
        ]

    @property
    def decode_errors(self) -> int:
        """Datagrams dropped because they failed to decode."""
        return self._decode_errors

    async def close(self) -> None:
        """Release the underlying transport."""
        await self._transport.close()
